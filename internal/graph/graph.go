// Package graph provides a compact, immutable undirected graph in
// compressed sparse row (CSR) form, together with the structural
// transformations used throughout the mixing-time measurement
// methodology: largest-connected-component extraction, low-degree
// trimming, BFS sampling, and induced subgraphs.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected;
// directed inputs are symmetrized at build time, matching the
// preprocessing used by the paper and by the Sybil-defense literature
// it measures.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a vertex. Vertices of a Graph with n nodes are the
// contiguous range [0, n).
type NodeID = uint32

// MaxNodes is the largest node count a Graph supports.
const MaxNodes = math.MaxUint32 - 1

// Graph is an immutable simple undirected graph in CSR form. The zero
// value is an empty graph. All methods are safe for concurrent use.
//
// Offsets are stored in one of two widths: a compact uint32 array
// when the adjacency length 2m fits in 32 bits (every graph under ~2
// billion undirected edges — all of the paper's datasets and then
// some), or int64 above that. The compact form halves the
// offset-array traffic of every CSR pass, which on bandwidth-bound
// kernels is measurable; see DESIGN.md §12. Exactly one of off32 /
// off64 is non-nil on a non-empty graph.
type Graph struct {
	off32     []uint32 // len n+1 when compact, else nil
	off64     []int64  // len n+1 when 2m >= 2^32, else nil
	neighbors []NodeID
}

// adopt wraps trusted CSR arrays (a Builder's output) in a Graph,
// compacting the offsets to uint32 when they fit. No validation.
func adopt(offsets []int64, neighbors []NodeID) *Graph {
	if len(offsets) == 0 {
		return &Graph{neighbors: neighbors}
	}
	if int64(len(neighbors)) <= math.MaxUint32 {
		off := make([]uint32, len(offsets))
		for i, o := range offsets {
			off[i] = uint32(o)
		}
		return &Graph{off32: off, neighbors: neighbors}
	}
	return &Graph{off64: offsets, neighbors: neighbors}
}

// NumNodes returns the number of vertices n.
func (g *Graph) NumNodes() int {
	if g.off32 != nil {
		return len(g.off32) - 1
	}
	if g.off64 != nil {
		return len(g.off64) - 1
	}
	return 0
}

// NumEdges returns the number of undirected edges m. Each edge {u,v}
// is counted once.
func (g *Graph) NumEdges() int64 { return int64(len(g.neighbors)) / 2 }

// offsetAt returns the CSR offset of vertex slot v (0 <= v <= n).
func (g *Graph) offsetAt(v int) int64 {
	if g.off32 != nil {
		return int64(g.off32[v])
	}
	return g.off64[v]
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int {
	if g.off32 != nil {
		return int(g.off32[v+1] - g.off32[v])
	}
	return int(g.off64[v+1] - g.off64[v])
}

// Neighbors returns the adjacency list of v, sorted ascending. The
// returned slice aliases the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	if g.off32 != nil {
		return g.neighbors[g.off32[v]:g.off32[v+1]]
	}
	return g.neighbors[g.off64[v]:g.off64[v+1]]
}

// Offsets32 returns the compact uint32 CSR offset array (length
// NumNodes+1), or nil when the graph is empty or uses the wide form.
// It is the zero-cost accessor the hot kernels hoist once per pass:
// with off and adj := Adjacency() in locals, the inner loop
//
//	for i := off[v]; i < off[v+1]; i++ { ... adj[i] ... }
//
// compiles to two uint32 loads per row with no per-row slice header
// construction. The array aliases graph storage; do not modify.
func (g *Graph) Offsets32() []uint32 { return g.off32 }

// Offsets64 returns the wide int64 offset array when the graph uses
// it (adjacency length >= 2^32), else nil. Kernels pair it with
// Offsets32: exactly one is non-nil on a non-empty graph.
func (g *Graph) Offsets64() []int64 { return g.off64 }

// Adjacency returns the full CSR adjacency array (length 2m), the
// concatenated sorted neighbor lists. It aliases graph storage; do
// not modify.
func (g *Graph) Adjacency() []NodeID { return g.neighbors }

// HasEdge reports whether the edge {u, v} is present, by binary search
// over u's (sorted) adjacency list.
func (g *Graph) HasEdge(u, v NodeID) bool {
	adj := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// EdgeSlot returns the index of v within u's adjacency list, or -1 if
// {u,v} is not an edge. Edge slots are the per-node "pin numbers" used
// by random-route permutations in SybilGuard/SybilLimit.
func (g *Graph) EdgeSlot(u, v NodeID) int {
	adj := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(adj) && adj[lo] == v {
		return lo
	}
	return -1
}

// MinDegree returns the smallest degree in the graph, or 0 for an
// empty graph.
func (g *Graph) MinDegree() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < n; v++ {
		if d := g.Degree(NodeID(v)); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the largest degree in the graph, or 0 for an empty
// graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return float64(2*g.NumEdges()) / float64(n)
}

// Edges calls fn once for every undirected edge {u, v} with u < v.
// Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				if !fn(NodeID(u), v) {
					return
				}
			}
		}
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumNodes(), g.NumEdges())
}

// Validate checks the structural invariants of the CSR representation:
// sorted, deduplicated, loop-free and symmetric adjacency. It is
// intended for tests and for validating externally constructed graphs.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if n == 0 {
		if len(g.neighbors) != 0 {
			return fmt.Errorf("graph: empty offsets with %d neighbors", len(g.neighbors))
		}
		return nil
	}
	if g.offsetAt(0) != 0 || g.offsetAt(n) != int64(len(g.neighbors)) {
		return fmt.Errorf("graph: offset bounds [%d,%d] do not match %d neighbors",
			g.offsetAt(0), g.offsetAt(n), len(g.neighbors))
	}
	// All offsets must be monotone before any adjacency slicing:
	// HasEdge below indexes by the *neighbor's* offsets, which the
	// per-node loop would not have vetted yet.
	for v := 0; v < n; v++ {
		if g.offsetAt(v) > g.offsetAt(v+1) {
			return fmt.Errorf("graph: decreasing offsets at node %d", v)
		}
	}
	for v := 0; v < n; v++ {
		adj := g.Neighbors(NodeID(v))
		for i, w := range adj {
			if int(w) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", v, w)
			}
			if w == NodeID(v) {
				return fmt.Errorf("graph: self-loop at node %d", v)
			}
			if i > 0 && adj[i-1] >= w {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", v)
			}
			if !g.HasEdge(w, NodeID(v)) {
				return fmt.Errorf("graph: edge %d->%d has no reverse", v, w)
			}
		}
	}
	return nil
}
