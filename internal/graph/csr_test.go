package graph

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func TestCSRRoundTrip(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddNode(4) // trailing isolated nodes survive
	g := b.Build()
	offsets, neighbors := g.AppendCSR(nil, nil)
	if wantOff, wantAdj := CSRSizes(int64(g.NumNodes()), int64(g.NumEdges())); int64(len(offsets)) != wantOff ||
		int64(len(neighbors)) != wantAdj {
		t.Fatalf("CSR sizes = %d/%d, want %d/%d", len(offsets), len(neighbors), wantOff, wantAdj)
	}
	back, err := FromCSR(offsets, neighbors)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip %d/%d, want %d/%d",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	g.Edges(func(u, v NodeID) bool {
		if !back.HasEdge(u, v) {
			t.Fatalf("edge %d-%d lost", u, v)
		}
		return true
	})
}

func TestCSRRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	b := NewBuilder(0)
	for i := 0; i < 500; i++ {
		u, v := NodeID(rng.IntN(100)), NodeID(rng.IntN(100))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	back, err := FromCSR(g.AppendCSR(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", back.NumEdges(), g.NumEdges())
	}
}

func TestFromCSREmpty(t *testing.T) {
	g, err := FromCSR(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty CSR produced %d/%d", g.NumNodes(), g.NumEdges())
	}
	if _, err := FromCSR(nil, []NodeID{1}); err == nil {
		t.Fatal("neighbors without offsets accepted")
	}
}

func TestFromCSRRejectsInvalid(t *testing.T) {
	cases := []struct {
		name      string
		offsets   []int64
		neighbors []NodeID
		want      string
	}{
		{"non-monotone", []int64{0, 2, 1, 2}, []NodeID{1, 2, 0}, "invalid CSR"},
		{"out-of-range neighbor", []int64{0, 1, 2}, []NodeID{5, 0}, "invalid CSR"},
		{"asymmetric", []int64{0, 1, 1}, []NodeID{1}, "invalid CSR"},
		{"self-loop", []int64{0, 1, 2}, []NodeID{0, 1}, "invalid CSR"},
		{"unsorted adjacency", []int64{0, 2, 3, 4}, []NodeID{2, 1, 0, 0}, "invalid CSR"},
	}
	for _, c := range cases {
		if _, err := FromCSR(c.offsets, c.neighbors); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestAppendCSRAppends(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	g := b.Build()
	offsets, neighbors := g.AppendCSR([]int64{-7}, []NodeID{42})
	if offsets[0] != -7 || neighbors[0] != 42 {
		t.Fatal("AppendCSR clobbered existing prefix")
	}
	if len(offsets) != 1+g.NumNodes()+1 || int64(len(neighbors)) != 1+2*g.NumEdges() {
		t.Fatalf("appended lengths %d/%d", len(offsets), len(neighbors))
	}
}
