package graph

import (
	"fmt"
	"math"
)

// FromCSR constructs a Graph directly from its CSR arrays, validating
// every structural invariant (monotone offsets bounded by the
// adjacency length, sorted loop-free in-range neighbor lists,
// symmetric edges) before accepting them. It is the trusted entry
// point for deserialized snapshots: unlike the Builder it performs no
// re-sorting or deduplication, so a valid snapshot loads in O(m)
// plus the validation scan, and a corrupt one returns a wrapped
// error instead of a graph that panics later.
//
// The neighbors array is retained, not copied; the caller must not
// modify it afterwards. The offsets are compacted to the graph's
// internal uint32 form when the adjacency length fits 32 bits (use
// FromCSR32 to hand over a compact array without the copy).
func FromCSR(offsets []int64, neighbors []NodeID) (*Graph, error) {
	if len(offsets) == 0 {
		if len(neighbors) != 0 {
			return nil, fmt.Errorf("graph: CSR with no offsets but %d neighbors", len(neighbors))
		}
		return &Graph{}, nil
	}
	if len(offsets)-1 > MaxNodes {
		return nil, fmt.Errorf("graph: CSR node count %d exceeds limit %d", len(offsets)-1, MaxNodes)
	}
	for i, o := range offsets {
		if o < 0 {
			return nil, fmt.Errorf("graph: invalid CSR: negative offset %d at node %d", o, i)
		}
	}
	g := &Graph{off64: offsets, neighbors: neighbors}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: invalid CSR: %w", err)
	}
	if int64(len(neighbors)) <= math.MaxUint32 {
		off := make([]uint32, len(offsets))
		for i, o := range offsets {
			off[i] = uint32(o)
		}
		g.off32, g.off64 = off, nil
	}
	return g, nil
}

// FromCSR32 is FromCSR for the compact uint32 offset form: the
// offsets array is adopted directly (no copy, no widening), so
// loaders that already hold uint32 offsets — the MIXG readers — pay
// zero conversion. Both arrays are retained; the caller must not
// modify them afterwards.
func FromCSR32(offsets []uint32, neighbors []NodeID) (*Graph, error) {
	if len(offsets) == 0 {
		if len(neighbors) != 0 {
			return nil, fmt.Errorf("graph: CSR with no offsets but %d neighbors", len(neighbors))
		}
		return &Graph{}, nil
	}
	if len(offsets)-1 > MaxNodes {
		return nil, fmt.Errorf("graph: CSR node count %d exceeds limit %d", len(offsets)-1, MaxNodes)
	}
	g := &Graph{off32: offsets, neighbors: neighbors}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: invalid CSR: %w", err)
	}
	return g, nil
}

// CSRSizes returns the CSR array lengths a graph with n nodes and m
// undirected edges occupies: n+1 offsets and 2m adjacency entries.
// Loaders use it to sanity-check declared counts against input size
// before allocating.
func CSRSizes(n, m int64) (offsets, neighbors int64) {
	return n + 1, 2 * m
}

// AppendCSR appends the graph's offsets and symmetrized adjacency to
// the given slices (pass nil to allocate) and returns them. It is the
// serialization counterpart of FromCSR.
func (g *Graph) AppendCSR(offsets []int64, neighbors []NodeID) ([]int64, []NodeID) {
	n := g.NumNodes()
	offsets = append(offsets, 0)
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(g.Degree(NodeID(v)))
		offsets = append(offsets, total)
	}
	neighbors = append(neighbors, g.neighbors...)
	return offsets, neighbors
}
