package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between two vertices.
type Edge struct{ U, V NodeID }

// Builder accumulates edges and produces an immutable Graph.
// Directed duplicates, parallel edges and self-loops are eliminated at
// Build time, so callers may feed raw directed edge lists (as found in
// the SNAP datasets) and obtain the symmetrized simple graph the paper
// measures. The zero value is ready to use.
type Builder struct {
	edges []Edge
	maxID NodeID
	any   bool
}

// NewBuilder returns a Builder with capacity for sizeHint edges.
func NewBuilder(sizeHint int) *Builder {
	return &Builder{edges: make([]Edge, 0, sizeHint)}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
func (b *Builder) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if v > b.maxID {
		b.maxID = v
	}
	b.any = true
	b.edges = append(b.edges, Edge{u, v})
}

// AddNode ensures the builder's node range covers v, so isolated
// vertices survive Build.
func (b *Builder) AddNode(v NodeID) {
	if v > b.maxID {
		b.maxID = v
	}
	b.any = true
}

// NumPendingEdges returns the number of (possibly duplicated) edges
// recorded so far.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the graph. The Builder keeps its state and may be
// extended and built again.
func (b *Builder) Build() *Graph {
	if !b.any {
		return &Graph{}
	}
	n := int(b.maxID) + 1

	// Sort and dedup the normalized (u<v) edge list.
	es := make([]Edge, len(b.edges))
	copy(es, b.edges)
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	uniq := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			uniq = append(uniq, e)
		}
	}
	es = uniq

	offsets := make([]int64, n+1)
	for _, e := range es {
		offsets[e.U+1]++
		offsets[e.V+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]NodeID, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range es {
		neighbors[cursor[e.U]] = e.V
		cursor[e.U]++
		neighbors[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Adjacency lists come out sorted because edges were processed in
	// (U,V) order for the U side; the V side needs a per-node sort only
	// when sources interleave, so sort defensively (cheap: lists are
	// already nearly sorted).
	for v := 0; v < n; v++ {
		adj := neighbors[offsets[v]:offsets[v+1]]
		if !sorted(adj) {
			sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		}
	}
	return adopt(offsets, neighbors)
}

func sorted(a []NodeID) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	return true
}

// FromEdges builds a graph with n nodes from an edge list. If n is 0
// the node count is inferred as max endpoint + 1.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 || n > MaxNodes {
		return nil, fmt.Errorf("graph: invalid node count %d", n)
	}
	b := NewBuilder(len(edges))
	for _, e := range edges {
		if n > 0 && (int(e.U) >= n || int(e.V) >= n) {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range for n=%d", e.U, e.V, n)
		}
		b.AddEdge(e.U, e.V)
	}
	if n > 0 {
		b.AddNode(NodeID(n - 1))
	}
	return b.Build(), nil
}

// FromAdjacency builds a graph from an adjacency-list representation.
// The lists may be unsorted and may contain duplicates or self-loops;
// edges are symmetrized.
func FromAdjacency(adj [][]NodeID) *Graph {
	b := NewBuilder(0)
	for u, vs := range adj {
		b.AddNode(NodeID(u))
		for _, v := range vs {
			b.AddEdge(NodeID(u), v)
		}
	}
	return b.Build()
}
