// Command gensocial emits synthetic social graphs: either one of the
// paper's Table-1 dataset substitutes or a raw generator model.
//
// Usage:
//
//	gensocial -dataset physics-1 -scale 0.5 -o physics1.txt
//	gensocial -model ba      -n 100000 -k 5            -o ba.txt.gz
//	gensocial -model er      -n 10000  -p 0.001        -o er.txt
//	gensocial -model ws      -n 10000  -k 4  -beta 0.1 -o ws.txt
//	gensocial -model caveman -n 10000  -k 8  -p 0.03   -o cave.mixg
//	gensocial -model sbm     -n 10000  -k 10 -pin 0.05 -pout 0.0005 -o sbm.txt
//
// The ringer model (ring lattice + ER shortcuts) additionally
// supports -stream, which pipes the generator straight into a
// streamed on-disk MIXG build — no in-RAM edge list — so node counts
// far beyond RAM are practical:
//
//	gensocial -model ringer -n 10000000 -k 10 -p 1e-7 -stream -o big.mixg
//
// -list prints the available dataset names.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mixtime"
)

func main() {
	dataset := flag.String("dataset", "", "Table-1 dataset substitute to generate")
	scale := flag.Float64("scale", 0.01, "dataset scale factor")
	model := flag.String("model", "", "raw model: ba, er, ws, ringer, caveman, sbm, forestfire, kleinberg, holmekim")
	n := flag.Int("n", 10_000, "node count")
	k := flag.Int("k", 5, "model degree/attachment/clique/community parameter")
	p := flag.Float64("p", 0.01, "model probability (er: edge, caveman: rewire)")
	beta := flag.Float64("beta", 0.1, "ws rewiring probability")
	pin := flag.Float64("pin", 0.05, "sbm intra-community probability")
	pout := flag.Float64("pout", 0.0005, "sbm inter-community probability")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (required; .gz / .mixg supported)")
	stream := flag.Bool("stream", false, "stream the graph to a .mixg file without building it in RAM (ringer model only)")
	list := flag.Bool("list", false, "list dataset names and exit")
	flag.Parse()

	if *list {
		for _, d := range mixtime.Datasets() {
			fmt.Printf("%-14s %-12s n=%-8d m=%-9d µ=%.4f\n",
				d.Name, d.Kind, d.PaperNodes, d.PaperEdges, d.PaperMu)
		}
		return
	}
	if err := run(*dataset, *scale, *model, *n, *k, *p, *beta, *pin, *pout, *seed, *out, *stream); err != nil {
		fmt.Fprintln(os.Stderr, "gensocial:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, model string, n, k int, p, beta, pin, pout float64, seed uint64, out string, stream bool) error {
	if out == "" {
		return fmt.Errorf("-o is required")
	}
	if stream {
		if model != "ringer" {
			return fmt.Errorf("-stream requires -model ringer")
		}
		if filepath.Ext(out) != ".mixg" {
			return fmt.Errorf("-stream writes an uncompressed binary snapshot; use a .mixg output (got %s)", out)
		}
		if err := mixtime.SaveGraphStreamed(out, uint64(n), mixtime.RingERStream(uint64(n), k, p, seed)); err != nil {
			return err
		}
		fmt.Printf("streamed %d nodes → %s\n", n, out)
		return nil
	}
	var g *mixtime.Graph
	switch {
	case dataset != "":
		d, err := mixtime.DatasetByName(dataset)
		if err != nil {
			return err
		}
		g = d.Generate(scale, seed)
	case model != "":
		switch model {
		case "ba":
			g = mixtime.BarabasiAlbert(n, k, seed)
		case "er":
			g = mixtime.ErdosRenyi(n, p, seed)
		case "ws":
			g = mixtime.WattsStrogatz(n, k, beta, seed)
		case "ringer":
			var edges []mixtime.Edge
			err := mixtime.RingERStream(uint64(n), k, p, seed)(func(u, v mixtime.NodeID) error {
				edges = append(edges, mixtime.Edge{U: u, V: v})
				return nil
			})
			if err != nil {
				return err
			}
			if g, err = mixtime.FromEdges(n, edges); err != nil {
				return err
			}
		case "caveman":
			g = mixtime.RelaxedCaveman(n/k, k, p, seed)
		case "sbm":
			g = mixtime.PlantedPartition(k, n/k, pin, pout, seed)
		case "forestfire":
			g = mixtime.ForestFire(n, p, seed)
		case "kleinberg":
			side := 1
			for side*side < n {
				side++
			}
			g = mixtime.Kleinberg(side, 2, seed)
		case "holmekim":
			g = mixtime.HolmeKim(n, k, p, seed)
		default:
			return fmt.Errorf("unknown model %q", model)
		}
	default:
		return fmt.Errorf("one of -dataset or -model is required")
	}
	fmt.Printf("generated %d nodes, %d edges → %s\n", g.NumNodes(), g.NumEdges(), out)
	return mixtime.SaveGraph(out, g)
}
