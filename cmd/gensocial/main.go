// Command gensocial emits synthetic social graphs: either one of the
// paper's Table-1 dataset substitutes or a raw generator model.
//
// Usage:
//
//	gensocial -dataset physics-1 -scale 0.5 -o physics1.txt
//	gensocial -model ba      -n 100000 -k 5            -o ba.txt.gz
//	gensocial -model er      -n 10000  -p 0.001        -o er.txt
//	gensocial -model ws      -n 10000  -k 4  -beta 0.1 -o ws.txt
//	gensocial -model caveman -n 10000  -k 8  -p 0.03   -o cave.mixg
//	gensocial -model sbm     -n 10000  -k 10 -pin 0.05 -pout 0.0005 -o sbm.txt
//
// -list prints the available dataset names.
package main

import (
	"flag"
	"fmt"
	"os"

	"mixtime"
)

func main() {
	dataset := flag.String("dataset", "", "Table-1 dataset substitute to generate")
	scale := flag.Float64("scale", 0.01, "dataset scale factor")
	model := flag.String("model", "", "raw model: ba, er, ws, caveman, sbm, forestfire, kleinberg, holmekim")
	n := flag.Int("n", 10_000, "node count")
	k := flag.Int("k", 5, "model degree/attachment/clique/community parameter")
	p := flag.Float64("p", 0.01, "model probability (er: edge, caveman: rewire)")
	beta := flag.Float64("beta", 0.1, "ws rewiring probability")
	pin := flag.Float64("pin", 0.05, "sbm intra-community probability")
	pout := flag.Float64("pout", 0.0005, "sbm inter-community probability")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (required; .gz / .mixg supported)")
	list := flag.Bool("list", false, "list dataset names and exit")
	flag.Parse()

	if *list {
		for _, d := range mixtime.Datasets() {
			fmt.Printf("%-14s %-12s n=%-8d m=%-9d µ=%.4f\n",
				d.Name, d.Kind, d.PaperNodes, d.PaperEdges, d.PaperMu)
		}
		return
	}
	if err := run(*dataset, *scale, *model, *n, *k, *p, *beta, *pin, *pout, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gensocial:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, model string, n, k int, p, beta, pin, pout float64, seed uint64, out string) error {
	if out == "" {
		return fmt.Errorf("-o is required")
	}
	var g *mixtime.Graph
	switch {
	case dataset != "":
		d, err := mixtime.DatasetByName(dataset)
		if err != nil {
			return err
		}
		g = d.Generate(scale, seed)
	case model != "":
		switch model {
		case "ba":
			g = mixtime.BarabasiAlbert(n, k, seed)
		case "er":
			g = mixtime.ErdosRenyi(n, p, seed)
		case "ws":
			g = mixtime.WattsStrogatz(n, k, beta, seed)
		case "caveman":
			g = mixtime.RelaxedCaveman(n/k, k, p, seed)
		case "sbm":
			g = mixtime.PlantedPartition(k, n/k, pin, pout, seed)
		case "forestfire":
			g = mixtime.ForestFire(n, p, seed)
		case "kleinberg":
			side := 1
			for side*side < n {
				side++
			}
			g = mixtime.Kleinberg(side, 2, seed)
		case "holmekim":
			g = mixtime.HolmeKim(n, k, p, seed)
		default:
			return fmt.Errorf("unknown model %q", model)
		}
	default:
		return fmt.Errorf("one of -dataset or -model is required")
	}
	fmt.Printf("generated %d nodes, %d edges → %s\n", g.NumNodes(), g.NumEdges(), out)
	return mixtime.SaveGraph(out, g)
}
