// Command mixtime measures the mixing time of a graph from the
// command line.
//
// Usage:
//
//	mixtime [global flags] <subcommand> [flags] <graph>
//
//	mixtime info    <graph>
//	mixtime slem    [-method lanczos|power] [-tol 1e-8] <graph>
//	mixtime measure [-sources 100] [-maxwalk 200] [-eps 0.1,0.01] <graph>
//	mixtime trim    -mindeg K -o out.txt <graph>
//	mixtime sample  -k N [-start V] -o out.txt <graph>
//	mixtime communities [-method louvain|lpa] <graph>
//	mixtime rank    [-by pagerank|ppr|betweenness|closeness|degree] <graph>
//	mixtime profile [-k 10] <graph>
//
// Global flags come before the subcommand and apply to any of them:
//
//	-cpuprofile f.pprof   write a CPU profile for the whole invocation
//	-memprofile f.pprof   write a heap profile at exit
//	-trace f.trace        write a runtime execution trace
//
// e.g. `mixtime -cpuprofile slem.pprof slem dataset:physics-1`.
//
// <graph> is an edge-list / binary file (".gz" ok), or a dataset
// reference "dataset:<name>[:scale]" naming one of the paper's
// Table-1 substitutes, e.g. "dataset:physics-1:0.5".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mixtime"
	"mixtime/internal/cliutil"
)

func main() {
	// Global flags precede the subcommand; flag parsing stops at the
	// first non-flag argument, which is the subcommand name.
	global := flag.NewFlagSet("mixtime", flag.ExitOnError)
	global.Usage = usageExit
	cpuProfile := global.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := global.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := global.String("trace", "", "write a runtime execution trace to this file")
	if err := global.Parse(os.Args[1:]); err != nil {
		usageExit()
	}
	args := global.Args()
	if len(args) < 1 {
		usageExit()
	}
	stopProfiles, err := cliutil.StartProfiles(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixtime:", err)
		os.Exit(1)
	}

	// Interrupts cancel the context; the spectral iterations and trace
	// sampling behind slem/measure check it and abort promptly, after
	// which profiles are still flushed below. A second signal
	// hard-exits a wedged run (see cliutil.SignalContext).
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()
	switch args[0] {
	case "info":
		err = cmdInfo(args[1:])
	case "slem":
		err = cmdSLEM(ctx, args[1:])
	case "measure":
		err = cmdMeasure(ctx, args[1:])
	case "trim":
		err = cmdTrim(args[1:])
	case "sample":
		err = cmdSample(args[1:])
	case "communities":
		err = cmdCommunities(args[1:])
	case "rank":
		err = cmdRank(args[1:])
	case "profile":
		err = cmdProfile(args[1:])
	default:
		stopProfiles() // usageExit never returns
		usageExit()
	}
	// Flush profiles before the error exit so a failed run still
	// yields usable profile data.
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixtime:", err)
		os.Exit(1)
	}
}

func usageExit() {
	fmt.Fprintln(os.Stderr, `usage: mixtime [global flags] <info|slem|measure|trim|sample|communities|rank|profile> [flags] <graph>
  global flags: -cpuprofile f  -memprofile f  -trace f
  <graph> is a file path or "dataset:<name>[:scale]" (see Table 1 names)`)
	os.Exit(2)
}

// loadArg resolves a graph argument: a file path or a dataset
// reference.
func loadArg(arg string) (*mixtime.Graph, error) { return cliutil.LoadGraphArg(arg) }

func positional(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("want exactly one graph argument, got %d", fs.NArg())
	}
	return fs.Arg(0), nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	arg, err := positional(fs)
	if err != nil {
		return err
	}
	g, err := loadArg(arg)
	if err != nil {
		return err
	}
	lcc, _ := mixtime.LargestComponent(g)
	deg := mixtime.Degrees(g)
	fmt.Printf("nodes:           %d\n", g.NumNodes())
	fmt.Printf("edges:           %d\n", g.NumEdges())
	fmt.Printf("degree:          min=%d median=%.0f avg=%.2f p90=%d p99=%d max=%d gini=%.3f\n",
		deg.Min, deg.Median, deg.Mean, deg.P90, deg.P99, deg.Max, deg.Gini)
	fmt.Printf("connected:       %v (largest component: %d nodes, %d edges)\n",
		mixtime.IsConnected(g), lcc.NumNodes(), lcc.NumEdges())
	fmt.Printf("bipartite:       %v\n", mixtime.IsBipartite(lcc))
	fmt.Printf("clustering:      %.4f (transitivity %.4f)\n",
		mixtime.AverageClustering(lcc), mixtime.GlobalClustering(lcc))
	fmt.Printf("assortativity:   %+.4f\n", mixtime.Assortativity(lcc))
	fmt.Printf("mean path (est): %.2f (from 16 BFS sources)\n",
		mixtime.SampledPathLength(lcc, 16, 1))
	fmt.Printf("log n yardstick: %d (walk length Sybil defenses assume)\n",
		mixtime.FastMixingWalkLength(lcc.NumNodes()))
	return nil
}

func cmdSLEM(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("slem", flag.ExitOnError)
	method := fs.String("method", "lanczos", "lanczos or power")
	tol := fs.Float64("tol", 1e-8, "eigenvalue tolerance")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arg, err := positional(fs)
	if err != nil {
		return err
	}
	g, err := loadArg(arg)
	if err != nil {
		return err
	}
	lcc, _ := mixtime.LargestComponent(g)
	opt := mixtime.SpectralOptions{Tol: *tol}
	var est *mixtime.SpectralEstimate
	switch *method {
	case "lanczos":
		est, err = mixtime.SLEMContext(ctx, lcc, opt)
	case "power":
		est, err = mixtime.SLEMPowerContext(ctx, lcc, opt)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		return err
	}
	fmt.Printf("µ (SLEM):   %.8f  (λ2=%.8f λn=%.8f, %d matvecs, converged=%v)\n",
		est.Mu, est.Lambda2, est.LambdaN, est.Iterations, est.Converged)
	for _, eps := range []float64{0.25, 0.1, 0.01, 1.0 / float64(lcc.NumNodes())} {
		fmt.Printf("T(ε=%-8.2g) ∈ [%8.1f, %10.1f]  (Sinclair bounds)\n",
			eps, mixtime.MixingLowerBound(est.Mu, eps),
			mixtime.MixingUpperBound(est.Mu, eps, lcc.NumNodes()))
	}
	return nil
}

func cmdMeasure(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	sources := fs.Int("sources", 100, "number of sampled start vertices")
	maxWalk := fs.Int("maxwalk", 200, "maximum propagated walk length")
	epsList := fs.String("eps", "0.25,0.1,0.01", "comma-separated ε values")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arg, err := positional(fs)
	if err != nil {
		return err
	}
	g, err := loadArg(arg)
	if err != nil {
		return err
	}
	m, err := mixtime.MeasureContext(ctx, g, mixtime.Options{
		Sources: *sources, MaxWalk: *maxWalk, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("component: %d nodes, %d edges (bipartite=%v → lazy=%v)\n",
		m.Graph.NumNodes(), m.Graph.NumEdges(), m.Bipartite, m.Chain.IsLazy())
	fmt.Printf("µ (SLEM):  %.8f\n", m.Mu())
	fmt.Printf("log n:     %d\n", m.FastMixingYardstick())
	for _, s := range strings.Split(*epsList, ",") {
		eps, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad ε %q: %v", s, err)
		}
		t, ok := m.SampledMixingTime(eps)
		mark := ""
		if !ok {
			mark = "+ (some sources never reached ε within maxwalk)"
		}
		fmt.Printf("ε=%-8.2g sampled T=%d%s  avg=%.1f  bound=[%.1f, %.1f]\n",
			eps, t, mark, m.AverageMixingTime(eps),
			m.LowerBound(eps), m.UpperBound(eps))
	}
	return nil
}

func cmdTrim(args []string) error {
	fs := flag.NewFlagSet("trim", flag.ExitOnError)
	minDeg := fs.Int("mindeg", 2, "minimum degree to keep")
	out := fs.String("o", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arg, err := positional(fs)
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	g, err := loadArg(arg)
	if err != nil {
		return err
	}
	trimmed, _ := mixtime.Trim(g, *minDeg)
	lcc, _ := mixtime.LargestComponent(trimmed)
	fmt.Printf("trimmed to min degree %d: %d → %d nodes (largest component %d)\n",
		*minDeg, g.NumNodes(), trimmed.NumNodes(), lcc.NumNodes())
	return mixtime.SaveGraph(*out, lcc)
}

func cmdCommunities(args []string) error {
	fs := flag.NewFlagSet("communities", flag.ExitOnError)
	method := fs.String("method", "louvain", "louvain or lpa")
	seed := fs.Uint64("seed", 1, "random seed")
	top := fs.Int("top", 10, "largest communities to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arg, err := positional(fs)
	if err != nil {
		return err
	}
	g, err := loadArg(arg)
	if err != nil {
		return err
	}
	lcc, _ := mixtime.LargestComponent(g)
	var labels mixtime.CommunityLabels
	switch *method {
	case "louvain":
		labels = mixtime.Louvain(lcc, *seed)
	case "lpa":
		labels = mixtime.LabelPropagation(lcc, 100, *seed)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	sizes := map[int32]int{}
	for _, c := range labels {
		sizes[c]++
	}
	fmt.Printf("communities: %d   modularity Q = %.4f\n",
		labels.NumCommunities(), mixtime.Modularity(lcc, labels))
	// Sort sizes descending (simple selection over the map).
	listed := 0
	for listed < *top && len(sizes) > 0 {
		var bestC int32
		best := -1
		for c, s := range sizes {
			if s > best {
				best, bestC = s, c
			}
		}
		fmt.Printf("  community %-5d %d nodes (%.1f%%)\n",
			bestC, best, 100*float64(best)/float64(lcc.NumNodes()))
		delete(sizes, bestC)
		listed++
	}
	return nil
}

func cmdRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	by := fs.String("by", "pagerank", "pagerank, ppr, betweenness, closeness, degree")
	source := fs.Uint("source", 0, "restart node for ppr")
	top := fs.Int("top", 10, "nodes to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arg, err := positional(fs)
	if err != nil {
		return err
	}
	g, err := loadArg(arg)
	if err != nil {
		return err
	}
	lcc, _ := mixtime.LargestComponent(g)
	var scores []float64
	switch *by {
	case "pagerank":
		scores = mixtime.PageRank(lcc, 0.85)
	case "ppr":
		if int(*source) >= lcc.NumNodes() {
			return fmt.Errorf("source %d out of range", *source)
		}
		scores = mixtime.PersonalizedPageRank(lcc, mixtime.NodeID(*source), 0.85)
	case "betweenness":
		if lcc.NumNodes() > 5000 {
			scores = mixtime.SampledBetweenness(lcc, 256, 1)
		} else {
			scores = mixtime.Betweenness(lcc)
		}
	case "closeness":
		scores = mixtime.Closeness(lcc)
	case "degree":
		scores = make([]float64, lcc.NumNodes())
		for v := range scores {
			scores[v] = float64(lcc.Degree(mixtime.NodeID(v)))
		}
	default:
		return fmt.Errorf("unknown ranking %q", *by)
	}
	for i, v := range mixtime.TopNodes(scores, *top) {
		fmt.Printf("%2d. node %-8d %s = %.6g (degree %d)\n",
			i+1, v, *by, scores[v], lcc.Degree(v))
	}
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	k := fs.Int("k", 10, "eigenvalues to compute (λ2..λ_{k+1})")
	tol := fs.Float64("tol", 1e-8, "eigenvalue tolerance")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arg, err := positional(fs)
	if err != nil {
		return err
	}
	g, err := loadArg(arg)
	if err != nil {
		return err
	}
	lcc, _ := mixtime.LargestComponent(g)
	prof, err := mixtime.SpectralProfile(lcc, *k, mixtime.SpectralOptions{Tol: *tol})
	if err != nil {
		return err
	}
	near1 := 0
	for i, l := range prof {
		gap := 1 - l
		fmt.Printf("λ%-3d = %.8f   (gap %.2e, bound T(0.1) ≥ %.1f)\n",
			i+2, l, gap, mixtime.MixingLowerBound(l, 0.1))
		if l > 0.9 {
			near1++
		}
	}
	fmt.Printf("eigenvalues above 0.9: %d → roughly %d strong communities\n", near1, near1+1)
	return nil
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	k := fs.Int("k", 10_000, "sample size (BFS)")
	start := fs.Uint("start", 0, "BFS start vertex")
	out := fs.String("o", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arg, err := positional(fs)
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	g, err := loadArg(arg)
	if err != nil {
		return err
	}
	if int(*start) >= g.NumNodes() {
		return fmt.Errorf("start vertex %d out of range (n=%d)", *start, g.NumNodes())
	}
	sub, _ := mixtime.BFSSample(g, mixtime.NodeID(*start), *k)
	fmt.Printf("BFS sample from %d: %d nodes, %d edges\n", *start, sub.NumNodes(), sub.NumEdges())
	return mixtime.SaveGraph(*out, sub)
}
