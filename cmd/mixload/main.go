// Command mixload drives load at a running mixtimed daemon and
// reports what came back: throughput, error count, and latency
// quantiles (p50/p99/p999) split by cache-hit vs cache-miss — the
// split that shows what the fingerprint cache is actually worth.
//
// Requests are built from one op template (-op, -graph, and the
// measurement knobs) with the seed cycling over -distinct values, so
// a run issues exactly -distinct distinct fingerprints: the first
// arrival of each is a miss (or a singleflight join while the solve
// is in flight), every repeat is a hit. `-distinct 1 -n 1000` is a
// pure cache benchmark; `-distinct 1000 -n 1000` is a pure solve
// benchmark.
//
// With -mutate-every N, every Nth request slot becomes a POST
// /v1/mutate that grows the target graph by -mutate-grow random edges
// — the live-graph workload: each mutation bumps the graph's version,
// evicts its cached results, and forces the next identical query to
// re-solve under a new fingerprint. The summary line reports applied
// mutations and total evictions.
//
// Usage:
//
//	mixload -addr 127.0.0.1:8642                      # 200 slem queries, 8 workers
//	mixload -addr $A -op cdf -graph dblp -n 500 -c 16
//	mixload -addr $A -op bounds -distinct 20 -n 400
//	mixload -addr $A -graph physics-1 -n 300 -mutate-every 50
//	mixload -addr $A -n 500 -c 32 -retries 8 -hedge 50ms
//
// With -retries the client re-issues shed (429) and transient
// failures under exponential backoff honoring Retry-After; with
// -hedge it duplicates slow queries and takes the first answer. The
// summary then reports shed/retried/hedged counts separately from
// hard errors: overload protection kicking in is not a failure.
//
// Exit status is non-zero if any request failed for good (after
// whatever retries were allowed) — a zero-hard-error burst is the e2e
// smoke criterion scripts/check.sh enforces.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mixtime/internal/api"
	"mixtime/internal/cliutil"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "", "daemon address (host:port or URL), required")
	op := flag.String("op", api.OpSLEM, "operation per request: slem, bounds, cdf, admission, distmix, experiment")
	graphName := flag.String("graph", "", "target graph name (default: first of the daemon's registry)")
	experiment := flag.String("experiment", "T1", "experiment ID for -op experiment")
	n := flag.Int("n", 200, "total requests")
	conc := flag.Int("c", 8, "concurrent workers")
	distinct := flag.Int("distinct", 1, "distinct seeds (= distinct fingerprints) to cycle through")
	sources := flag.Int("sources", api.DefaultSources, "sources knob sent with each request")
	maxWalk := flag.Int("maxwalk", api.DefaultMaxWalk, "max walk knob sent with each request")
	eps := flag.Float64("eps", api.DefaultEps, "ε knob for cdf requests")
	method := flag.String("method", api.MethodLanczos, "SLEM solver for slem/bounds requests")
	distShards := flag.Int("distshards", api.DefaultDistShards, "simulated shard count for distmix requests")
	distWalks := flag.Int("distwalks", api.DefaultDistWalks, "walkers per node for distmix requests")
	distRounds := flag.Int("distrounds", api.DefaultDistRounds, "superstep budget for distmix requests")
	mutateEvery := flag.Int("mutate-every", 0, "issue one POST /v1/mutate per this many queries (0 = never); the target graph must be served -mutable")
	mutateGrow := flag.Int("mutate-grow", 4, "random absent edges each mutation inserts (the grow knob of the mutate request)")
	retries := flag.Int("retries", 0, "max retries per request (0 = fail on first error); retries back off exponentially and honor Retry-After")
	hedge := flag.Duration("hedge", 0, "hedge delay: duplicate a query that has not answered within this long and take the first response (0 = off)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the daemon to become healthy")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "mixload: -addr is required")
		return 2
	}
	if *n <= 0 || *conc <= 0 || *distinct <= 0 {
		fmt.Fprintln(os.Stderr, "mixload: -n, -c and -distinct must be positive")
		return 2
	}
	if *mutateEvery < 0 || *mutateGrow <= 0 {
		fmt.Fprintln(os.Stderr, "mixload: -mutate-every must be non-negative and -mutate-grow positive")
		return 2
	}
	if *mutateEvery > 0 && *op == api.OpExperiment {
		fmt.Fprintln(os.Stderr, "mixload: -mutate-every needs a graph op (experiments are not graph-addressed)")
		return 2
	}

	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()

	client := api.NewClient(*addr)
	client.MaxRetries = *retries
	client.HedgeDelay = *hedge
	waitCtx, cancel := context.WithTimeout(ctx, *wait)
	err := client.WaitReady(waitCtx, 0)
	cancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixload:", err)
		return 1
	}
	target := *graphName
	if target == "" && *op != api.OpExperiment {
		gs, err := client.Graphs(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mixload:", err)
			return 1
		}
		if len(gs.Graphs) == 0 {
			fmt.Fprintln(os.Stderr, "mixload: daemon serves no graphs")
			return 1
		}
		target = gs.Graphs[0].Name
	}

	template := api.Request{
		SchemaVersion: api.SchemaVersion,
		Op:            *op,
		Graph:         target,
		Params: api.Params{
			Sources:    *sources,
			MaxWalk:    *maxWalk,
			Eps:        *eps,
			Method:     *method,
			DistShards: *distShards,
			DistWalks:  *distWalks,
			DistRounds: *distRounds,
		},
	}
	if *op == api.OpExperiment {
		template.Graph = ""
		template.Experiment = *experiment
	}
	if err := template.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "mixload:", err)
		return 2
	}

	// Workers pull request indices from a shared counter; seed i%distinct
	// decides the fingerprint each index lands on.
	type sample struct {
		ns  int64
		hit bool
	}
	var (
		next      atomic.Int64
		errCount  atomic.Int64
		mutations atomic.Int64
		evicted   atomic.Int64
		mu        sync.Mutex
		samples   []sample
	)
	started := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(*n) || ctx.Err() != nil {
					return
				}
				// Request index i becomes a mutation on every
				// -mutate-every'th slot (never the first, so the cache is
				// warm before the first eviction): live-graph churn
				// interleaved with the query load.
				if *mutateEvery > 0 && i > 0 && i%int64(*mutateEvery) == 0 {
					rctx, cancel := context.WithTimeout(ctx, *timeout)
					mres, err := client.Mutate(rctx, api.MutateRequest{
						Graph: target, Grow: *mutateGrow})
					cancel()
					if err != nil {
						errCount.Add(1)
						fmt.Fprintf(os.Stderr, "mixload: mutate %d: %v\n", i, err)
						continue
					}
					mutations.Add(1)
					evicted.Add(int64(mres.Evicted))
					continue
				}
				req := template
				req.Params.Seed = uint64(i % int64(*distinct))
				rctx, cancel := context.WithTimeout(ctx, *timeout)
				t0 := time.Now()
				resp, err := client.Query(rctx, req)
				elapsed := time.Since(t0)
				cancel()
				if err != nil {
					errCount.Add(1)
					fmt.Fprintf(os.Stderr, "mixload: request %d: %v\n", i, err)
					continue
				}
				mu.Lock()
				samples = append(samples, sample{ns: elapsed.Nanoseconds(), hit: resp.CacheHit})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(started)

	var hits, misses []float64
	for _, s := range samples {
		if s.hit {
			hits = append(hits, float64(s.ns))
		} else {
			misses = append(misses, float64(s.ns))
		}
	}
	fmt.Printf("mixload: %s op=%s graph=%s n=%d c=%d distinct=%d\n",
		*addr, *op, target, *n, *conc, *distinct)
	fmt.Printf("  done:        %d ok, %d errors in %.2fs (%.1f req/s)\n",
		len(samples), errCount.Load(), wall.Seconds(),
		float64(len(samples))/wall.Seconds())
	printBucket("cache-hit ", hits)
	printBucket("cache-miss", misses)
	if *mutateEvery > 0 {
		fmt.Printf("  mutations:   %d applied, %d cached results evicted\n",
			mutations.Load(), evicted.Load())
	}
	// Shed responses and retries are the daemon protecting itself, not
	// request failures: they are reported apart from the hard errors
	// that drive the exit status. A shed request that exhausts its
	// retries does land in the error count — dropping work silently is
	// exactly what this tool exists to catch.
	m := client.Metrics()
	if *retries > 0 || *hedge > 0 || m.Sheds > 0 {
		fmt.Printf("  resilience:  %d shed, %d retried, %d hedged (%d hedge wins)\n",
			m.Sheds, m.Retries, m.Hedges, m.HedgeWins)
	}

	if errCount.Load() > 0 || ctx.Err() != nil {
		return 1
	}
	return 0
}

// printBucket reports one latency population's quantiles.
func printBucket(label string, ns []float64) {
	if len(ns) == 0 {
		fmt.Printf("  %s:  (none)\n", label)
		return
	}
	sort.Float64s(ns)
	q := func(p float64) time.Duration {
		idx := int(p * float64(len(ns)-1))
		return time.Duration(int64(ns[idx]))
	}
	fmt.Printf("  %s:  %d samples  p50=%v  p99=%v  p999=%v  max=%v\n",
		label, len(ns), q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond),
		q(0.999).Round(time.Microsecond), q(1).Round(time.Microsecond))
}
