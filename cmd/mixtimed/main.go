// Command mixtimed is the mixing-time service daemon: it loads a
// graph registry once and answers measurement queries over HTTP until
// told to stop.
//
// The registry is populated from -graphs (a directory of MIXG
// snapshots or edge lists, ".gz" ok, one graph per file keyed by file
// stem) and -datasets (comma-separated Table-1 dataset names, or
// "all", generated at -scale with -seed). The wire contract is
// internal/api; the endpoints are:
//
//	POST /v1/query   — slem | bounds | cdf | admission | distmix | experiment
//	POST /v1/mutate  — edge insert/delete/grow batches on -mutable graphs
//	GET  /v1/graphs  — the registry listing
//	GET  /healthz    — 200 while serving, 503 while draining
//	GET  /stats      — service counters, kernel telemetry, pool/cache occupancy
//
// Results are cached by the sha256 fingerprint of (graph content
// hash, output-determining parameters): concurrent identical queries
// collapse onto one solve, and repeats replay from memory — watch
// service_solves in /stats stay flat while service_cache_hits climbs.
//
// Graphs named in -mutable are served live: POST /v1/mutate applies an
// atomic edge batch, bumps the graph's mutation epoch, and evicts every
// cached result computed against older epochs (fingerprints embed the
// version-stamped content hash, so stale answers cannot survive a
// mutation). Watch service_mutations and service_evictions in /stats.
//
// The first SIGINT/SIGTERM shuts down gracefully: the listener
// closes, new queries are rejected with 503, in-flight ones run to
// completion (up to -grace), and only then do outstanding solves get
// cancelled. A second signal hard-exits (see cliutil.SignalContext).
//
// Usage:
//
//	mixtimed -datasets all -scale 0.01
//	mixtimed -graphs snapshots/ -addr :8642
//	mixtimed -datasets physics-1,dblp -addr 127.0.0.1:0 -addr-file addr.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"mixtime/internal/api"
	"mixtime/internal/cliutil"
	"mixtime/internal/datasets"
	"mixtime/internal/faults"
	"mixtime/internal/service"
	"mixtime/internal/telemetry"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8642", "listen address (host:0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	graphsDir := flag.String("graphs", "", "directory of graph snapshots to serve (MIXG or edge lists)")
	mmapGraphs := flag.Bool("mmap", false, "memory-map uncompressed MIXG v2 snapshots in -graphs instead of loading them into RAM (other formats fall back)")
	dataset := flag.String("datasets", "", `comma-separated Table-1 dataset names to generate and serve ("all" for every one)`)
	scale := flag.Float64("scale", api.DefaultScale, "scale factor for generated datasets")
	seed := flag.Uint64("seed", api.DefaultSeed, "seed for generated datasets")
	mutable := flag.String("mutable", "", `comma-separated registered graph names to serve as live, mutable graphs accepting POST /v1/mutate ("all" for every one)`)
	pool := flag.Int("pool", 0, "max concurrent solves (0 = GOMAXPROCS); hits and joins bypass the pool")
	maxQueue := flag.Int("max-queue", 0, "max solves waiting for a pool slot before overflow is shed with 429 (0 = 8x pool, negative = no queue)")
	maxQueueWait := flag.Duration("max-queue-wait", 0, "max time a queued solve waits for a pool slot before being shed (0 = 1s)")
	cacheMax := flag.Int("cache-max", 0, "completed results kept before FIFO eviction (0 = default)")
	cacheDir := flag.String("cache-dir", "", "persist completed results here (write-through) and warm-load them on startup")
	solveTimeout := flag.Duration("solve-timeout", 0, "hard cap on any single solve (0 = none)")
	inject := flag.String("inject", "", `arm deterministic fault injection, e.g. "seed=7,panic=1:4,latency=40ms" (see internal/faults)`)
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight requests")
	flag.Parse()

	reg := service.NewRegistry()
	defer reg.Close()
	if *graphsDir != "" {
		load, how := reg.LoadDir, "loaded"
		if *mmapGraphs {
			load, how = reg.LoadDirMapped, "mapped"
		}
		n, err := load(*graphsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mixtimed:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "mixtimed: %s %d graph(s) from %s\n", how, n, *graphsDir)
	}
	if *dataset != "" {
		names := strings.Split(*dataset, ",")
		if strings.TrimSpace(*dataset) == "all" {
			names = datasets.Names()
		}
		for _, name := range names {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			e, err := reg.AddDataset(name, *scale, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mixtimed:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "mixtimed: generated %s (%d nodes, %d edges)\n",
				e.Name, e.Graph.NumNodes(), e.Graph.NumEdges())
		}
	}
	if reg.Len() == 0 {
		fmt.Fprintln(os.Stderr, "mixtimed: empty registry (pass -graphs DIR and/or -datasets NAMES; try -datasets all)")
		return 2
	}

	col := telemetry.New()
	if *mutable != "" {
		names := strings.Split(*mutable, ",")
		if strings.TrimSpace(*mutable) == "all" {
			names = names[:0]
			for _, gi := range reg.List() {
				names = append(names, gi.Name)
			}
		}
		for _, name := range names {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := reg.MakeMutable(name, col); err != nil {
				fmt.Fprintln(os.Stderr, "mixtimed:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "mixtimed: serving %s as a mutable graph\n", name)
		}
	}

	// Two lifetimes: the signal context ends admission, the base
	// context ends solves. They are separate so that draining requests
	// keep their solves alive after the first signal.
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()
	base, cancelSolves := context.WithCancel(context.Background())
	defer cancelSolves()

	var injector *faults.Injector
	if *inject != "" {
		in, err := faults.Parse(*inject)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mixtimed:", err)
			return 2
		}
		injector = in
		fmt.Fprintf(os.Stderr, "mixtimed: fault injection armed (%s)\n", injector)
	}

	srv, err := service.New(base, reg, service.Config{
		PoolSize:     *pool,
		MaxQueue:     *maxQueue,
		MaxQueueWait: *maxQueueWait,
		CacheMax:     *cacheMax,
		CacheDir:     *cacheDir,
		SolveTimeout: *solveTimeout,
		Injector:     injector,
		Collector:    col,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixtimed:", err)
		return 1
	}
	if *cacheDir != "" {
		if n := col.Snapshot().Counters["service_cache_loaded"]; n > 0 {
			fmt.Fprintf(os.Stderr, "mixtimed: warm-loaded %d cached result(s) from %s\n", n, *cacheDir)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixtimed:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mixtimed:", err)
			return 1
		}
	}
	fmt.Printf("mixtimed: serving %d graph(s) on http://%s\n", reg.Len(), bound)

	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "mixtimed: shutting down (draining in-flight requests)")
		drained := make(chan struct{})
		go func() {
			srv.Drain()
			close(drained)
		}()
		shCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		httpSrv.Shutdown(shCtx) //nolint:errcheck // grace expiry handled below
		select {
		case <-drained:
		case <-shCtx.Done():
			fmt.Fprintln(os.Stderr, "mixtimed: grace period expired, cancelling solves")
		}
		cancelSolves()
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "mixtimed:", err)
		return 1
	}
	// Serve returned because Shutdown ran; wait for the drain path to
	// finish cancelling solves before exiting.
	<-base.Done()
	fmt.Fprintln(os.Stderr, "mixtimed: bye")
	return 0
}
