// Command sybilcheck runs SybilLimit admission on a graph, optionally
// under attack, sweeping the random-route length — the experiment
// behind the paper's Figure 8 for a single graph.
//
// Usage:
//
//	sybilcheck -graph dataset:facebook-A:0.002 -w 1,2,4,8,16
//	sybilcheck -graph g.txt -w 10 -attack 500:5   # 500 sybils, 5 attack edges
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mixtime"
	"mixtime/internal/cliutil"
)

func main() {
	graphArg := flag.String("graph", "", `graph file or "dataset:<name>[:scale]" (required)`)
	walks := flag.String("w", "1,2,4,8,16,24", "comma-separated route lengths")
	r0 := flag.Float64("r0", 3, "route-count multiplier (r = r0·√m)")
	verifier := flag.Uint("verifier", 0, "verifier vertex")
	attack := flag.String("attack", "", `optional "sybils:edges" attack, e.g. "500:5"`)
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*graphArg, *walks, *r0, mixtime.NodeID(*verifier), *attack, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sybilcheck:", err)
		os.Exit(1)
	}
}

func loadArg(arg string) (*mixtime.Graph, error) { return cliutil.LoadGraphArg(arg) }

func run(graphArg, walks string, r0 float64, verifier mixtime.NodeID, attack string, seed uint64) error {
	if graphArg == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := loadArg(graphArg)
	if err != nil {
		return err
	}
	g, _ = mixtime.LargestComponent(g)
	if int(verifier) >= g.NumNodes() {
		return fmt.Errorf("verifier %d out of range (n=%d)", verifier, g.NumNodes())
	}
	fmt.Printf("graph: %d nodes, %d edges; verifier %d\n", g.NumNodes(), g.NumEdges(), verifier)

	var atk *mixtime.SybilAttack
	if attack != "" {
		parts := strings.SplitN(attack, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf(`bad -attack %q, want "sybils:edges"`, attack)
		}
		ns, err1 := strconv.Atoi(parts[0])
		ge, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || ns < 2 || ge < 1 {
			return fmt.Errorf("bad -attack %q", attack)
		}
		atk = mixtime.NewSybilAttack(g, mixtime.BarabasiAlbert(ns, 3, seed+1), ge, seed+2)
		fmt.Printf("attack: %d sybils via %d attack edges\n", ns, ge)
	}

	for _, ws := range strings.Split(walks, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(ws))
		if err != nil {
			return fmt.Errorf("bad walk length %q: %v", ws, err)
		}
		cfg := mixtime.SybilLimitConfig{W: w, R0: r0, Seed: seed}
		if atk != nil {
			out, err := mixtime.RunSybilAttack(atk, verifier, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("w=%-4d r=%-5d honest %5.1f%%  sybil %5.1f%%  escaped tails %d/%d\n",
				w, out.R,
				100*float64(out.HonestAccepted)/float64(out.HonestTotal),
				100*float64(out.SybilAccepted)/float64(out.SybilTotal),
				out.EscapedTails, out.R)
			continue
		}
		p, err := mixtime.NewSybilLimit(g, cfg)
		if err != nil {
			return err
		}
		res := p.Verify(verifier, mixtime.AllHonest(g, verifier))
		fmt.Printf("w=%-4d r=%-5d accepted %5.1f%%  (no-intersection %d, balance-rejected %d)\n",
			w, res.R, 100*res.AcceptRate(), res.NoIntersection, res.BalanceRejected)
	}
	return nil
}
