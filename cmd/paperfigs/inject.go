package main

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"mixtime/internal/runner"
)

// injection is the parsed form of the hidden -inject flag:
// "id:mode[:n]" makes the first n attempts (default 1) of experiment
// id fail in the requested way, after which the real driver runs.
// Modes:
//
//	panic  the attempt panics (exercises recover + stack capture)
//	hang   the attempt blocks until its context is cancelled
//	       (exercises -exp-timeout and signal cancellation)
//	fail   the attempt returns a transient error (exercises -retries)
//
// It exists so CI and operators can prove the fault-tolerance
// machinery end to end on a real binary; it is not part of the
// supported interface.
type injection struct {
	id   string
	mode string
	n    int32

	fired atomic.Int32
}

// parseInject parses "id:mode[:n]". An empty spec returns nil.
func parseInject(spec string) (*injection, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("bad -inject %q: want id:panic|hang|fail[:n]", spec)
	}
	inj := &injection{id: strings.TrimSpace(parts[0]), mode: strings.ToLower(parts[1]), n: 1}
	if inj.id == "" {
		return nil, fmt.Errorf("bad -inject %q: empty experiment id", spec)
	}
	switch inj.mode {
	case "panic", "hang", "fail":
	default:
		return nil, fmt.Errorf("bad -inject %q: unknown mode %q", spec, inj.mode)
	}
	if len(parts) == 3 {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -inject %q: count must be a positive integer", spec)
		}
		inj.n = int32(n)
	}
	return inj, nil
}

// wrap is the runner.Runner.WrapRun hook: attempts of the targeted
// experiment fault until the injection budget is spent.
func (inj *injection) wrap(d runner.Def, run runner.RunFunc) runner.RunFunc {
	if inj == nil || !strings.EqualFold(d.ID, inj.id) && !strings.EqualFold(d.Name, inj.id) {
		return run
	}
	return func(ctx context.Context, cfg runner.Config, obs runner.Observer) (runner.Result, error) {
		if inj.fired.Add(1) > inj.n {
			return run(ctx, cfg, obs)
		}
		switch inj.mode {
		case "panic":
			panic(fmt.Sprintf("injected panic in %s", d.ID))
		case "hang":
			<-ctx.Done()
			return nil, ctx.Err()
		default: // fail
			return nil, errors.New("injected transient failure")
		}
	}
}
