package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mixtime/internal/runner"
)

func TestParseInject(t *testing.T) {
	for spec, want := range map[string]struct {
		id, mode string
		n        int32
	}{
		"T1:panic":    {"T1", "panic", 1},
		"F3:hang:2":   {"F3", "hang", 2},
		"fig8:fail:5": {"fig8", "fail", 5},
	} {
		got, err := parseInject(spec)
		if err != nil {
			t.Fatalf("parseInject(%q): %v", spec, err)
		}
		if got.id != want.id || got.mode != want.mode || got.n != want.n {
			t.Errorf("parseInject(%q) = %s:%s:%d, want %+v", spec, got.id, got.mode, got.n, want)
		}
	}
	if inj, err := parseInject(""); inj != nil || err != nil {
		t.Errorf("parseInject(\"\") = %v, %v; want nil, nil", inj, err)
	}
	for _, bad := range []string{"T1", "T1:explode", "T1:fail:0", "T1:fail:x", ":panic", "a:b:c:d"} {
		if _, err := parseInject(bad); err == nil {
			t.Errorf("parseInject(%q) accepted", bad)
		}
	}
}

func TestInjectionWrapTargetsOnlyNamedExperiment(t *testing.T) {
	inj, err := parseInject("T1:fail:2")
	if err != nil {
		t.Fatal(err)
	}
	real := func(ctx context.Context, cfg runner.Config, obs runner.Observer) (runner.Result, error) {
		return nil, errors.New("real driver ran")
	}
	// Non-matching experiments pass through untouched.
	other := inj.wrap(runner.Def{ID: "F3", Name: "fig3"}, real)
	if _, err := other(context.Background(), runner.Config{}, nil); err == nil ||
		err.Error() != "real driver ran" {
		t.Errorf("non-target wrapped: %v", err)
	}
	// The target faults for n attempts, then passes through. Legacy
	// names resolve too (spec says T1, def carries both).
	target := inj.wrap(runner.Def{ID: "T1", Name: "table1"}, real)
	for i := 0; i < 2; i++ {
		if _, err := target(context.Background(), runner.Config{}, nil); err == nil ||
			!strings.Contains(err.Error(), "injected") {
			t.Fatalf("attempt %d: err = %v, want injected failure", i+1, err)
		}
	}
	if _, err := target(context.Background(), runner.Config{}, nil); err == nil ||
		err.Error() != "real driver ran" {
		t.Errorf("attempt 3: err = %v, want pass-through to real driver", err)
	}
}

func TestInjectionPanicAndHangModes(t *testing.T) {
	ok := func(ctx context.Context, cfg runner.Config, obs runner.Observer) (runner.Result, error) {
		return nil, nil
	}
	inj, err := parseInject("X1:panic")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := inj.wrap(runner.Def{ID: "X1"}, ok)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic mode did not panic")
			}
		}()
		wrapped(context.Background(), runner.Config{}, nil)
	}()

	inj, err = parseInject("X1:hang")
	if err != nil {
		t.Fatal(err)
	}
	wrapped = inj.wrap(runner.Def{ID: "X1"}, ok)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := wrapped(ctx, runner.Config{}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("hang mode err = %v, want ctx.Err()", err)
	}
}

// TestInjectedPanicEndToEnd drives the real wrap hook through the
// runner exactly as `paperfigs -inject X:panic` does: the process
// survives, only the target fails, and it fails with a PanicError.
func TestInjectedPanicEndToEnd(t *testing.T) {
	reg := runner.NewRegistry()
	for _, id := range []string{"A", "X", "B"} {
		id := id
		reg.MustRegister(runner.Def{ID: id,
			Run: func(ctx context.Context, cfg runner.Config, obs runner.Observer) (runner.Result, error) {
				return nil, nil
			}})
	}
	inj, err := parseInject("X:panic")
	if err != nil {
		t.Fatal(err)
	}
	r := &runner.Runner{Registry: reg, Jobs: 3, WrapRun: inj.wrap}
	report, runErr := r.Run(context.Background(), runner.Config{})
	if runErr == nil {
		t.Fatal("injected panic not reported")
	}
	var pe *runner.PanicError
	if !errors.As(report.Experiments[1].Err, &pe) {
		t.Fatalf("X.Err = %v, want *PanicError", report.Experiments[1].Err)
	}
	for _, i := range []int{0, 2} {
		if e := report.Experiments[i]; e.Err != nil || e.Skipped {
			t.Errorf("%s did not survive the injected panic: %+v", e.ID, e)
		}
	}
}
