// Command paperfigs regenerates every table and figure of the
// paper's evaluation at a configurable scale, rendering them as text
// tables and ASCII charts and, with -csv/-json, writing the raw data
// for external plotting.
//
// It is a thin shell over internal/runner: every artifact registers
// there under its DESIGN.md §5 ID, and the runner schedules the
// requested subset across a worker pool. Experiments derive all
// randomness from -seed, so `-jobs 4` renders byte-identical output
// to `-jobs 1`. Artifact text goes to stdout; progress and the run
// summary go to stderr.
//
// Long runs are fault-tolerant: a panicking or timing-out experiment
// fails alone (retried under -retries) while the rest of the run
// continues, -checkpoint persists every completed artifact so
// -resume replays them byte-identically after a crash, and the first
// SIGINT/SIGTERM cancels the run gracefully (checkpoints, partial
// summary and profiles still written) while a second one hard-exits.
//
// Usage:
//
//	paperfigs                        # everything at the default scale
//	paperfigs -only T1,F8            # a subset (IDs or legacy names)
//	paperfigs -only table1,fig8      # same subset, legacy names
//	paperfigs -jobs 4                # schedule across 4 workers
//	paperfigs -timeout 2m            # cancel everything at the deadline
//	paperfigs -csv out/ -json out/   # also write out/<id>.{csv,json}
//	paperfigs -scale 0.01 -sources 1000 -seed 7
//	paperfigs -block 16 -workers 2   # propagation block size, kernel workers
//	paperfigs -retries 2 -retry-backoff 5s -exp-timeout 30m
//	paperfigs -checkpoint run1       # persist completed artifacts
//	paperfigs -checkpoint run1 -resume  # replay them after a crash
//
// IDs: T1, F1–F8, X1–X7, D1–D2. Legacy names: table1, fig1..fig8, attack,
// conductance, whanau, trust, detection, defenses, whanau-lookup.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mixtime/internal/api"
	"mixtime/internal/checkpoint"
	"mixtime/internal/cliutil"
	_ "mixtime/internal/experiments" // registers the experiment drivers
	"mixtime/internal/runner"
	"mixtime/internal/telemetry"
)

func main() { os.Exit(run()) }

// run is main's body returning the exit code, so deferred cleanups
// (profile flushing, signal-handler teardown) survive error paths —
// os.Exit in main would skip them.
func run() int {
	scale := flag.Float64("scale", 0.005, "dataset scale factor")
	sources := flag.Int("sources", api.DefaultSources, "sampled sources per graph")
	maxWalk := flag.Int("maxwalk", api.DefaultMaxWalk, "maximum propagated walk length")
	seed := flag.Uint64("seed", api.DefaultSeed, "random seed")
	block := flag.Int("block", api.DefaultBlockSize, "sources propagated per blocked kernel pass")
	workers := flag.Int("workers", 0, "kernel worker goroutines (0 = auto, 1 = sequential)")
	only := flag.String("only", "", "comma-separated subset (IDs like T1,F3 or legacy names)")
	jobs := flag.Int("jobs", 1, "experiments to run in parallel (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts per failing experiment (panics and timeouts retry; 0 = fail fast)")
	retryBackoff := flag.Duration("retry-backoff", 0, "sleep before the first retry, doubling per retry")
	expTimeout := flag.Duration("exp-timeout", 0, "per-experiment attempt deadline (fails the attempt, not the run; 0 = none)")
	checkpointDir := flag.String("checkpoint", "", "directory persisting each completed experiment's artifacts")
	resume := flag.Bool("resume", false, "with -checkpoint: replay completed experiments whose config fingerprint matches")
	injectSpec := flag.String("inject", "", "(testing) inject faults: id:panic|hang|fail[:n]")
	csvDir := flag.String("csv", "", "directory to write <id>.csv files")
	jsonDir := flag.String("json", "", "directory to write <id>.json files")
	quiet := flag.Bool("q", false, "suppress per-event progress on stderr")
	listOnly := flag.Bool("list", false, "list registered experiments and exit")
	telemetryOn := flag.Bool("telemetry", false, "collect kernel counters; table on stderr, plus <id>.telemetry.{csv,json} with -csv/-json")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *listOnly {
		for _, d := range runner.Default().Defs() {
			fmt.Printf("%-4s %-14s %s\n", d.ID, d.Name, d.Title)
		}
		return 0
	}
	if *resume && *checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "paperfigs: -resume requires -checkpoint DIR")
		return 2
	}
	inject, err := parseInject(*injectSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		return 2
	}

	stopProfiles, err := cliutil.StartProfiles(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		return 1
	}
	defer stopProfiles()

	// The flags land in the shared api.Params surface first — the same
	// validation and defaults the daemon applies to wire requests —
	// and bridge into the runner's Config from there.
	params := api.Params{
		Scale:       *scale,
		Seed:        *seed,
		Sources:     *sources,
		MaxWalk:     *maxWalk,
		SpectralTol: api.DefaultSpectralTol,
		BlockSize:   *block,
		Workers:     *workers,
	}
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		return 2
	}
	cfg := runner.ConfigFromParams(params)
	cfg.MaxAttempts = *retries + 1
	cfg.RetryBackoff = *retryBackoff
	cfg.PerExperimentTimeout = *expTimeout
	if *telemetryOn {
		cfg.Collector = telemetry.New()
	}
	var keys []string
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				keys = append(keys, name)
			}
		}
	}
	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "paperfigs:", err)
				return 1
			}
		}
	}

	var ckpt runner.Checkpointer
	if *checkpointDir != "" {
		store, err := checkpoint.Open(*checkpointDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			return 1
		}
		if *resume {
			ckpt = store
		} else {
			// Without -resume the store only records: a stale directory
			// never silently replays into a run that expects fresh work.
			ckpt = saveOnly{store}
		}
	}

	// First SIGINT/SIGTERM cancels the run: in-flight experiments stop
	// at their next context check, completed work is checkpointed, the
	// partial summary and the profiles are still written; a second
	// signal hard-exits (see cliutil.SignalContext).
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var obs runner.Observer
	if !*quiet {
		obs = runner.ObserverFunc(func(e runner.Event) {
			switch e.Kind {
			case runner.KindExperimentStarted:
				fmt.Fprintf(os.Stderr, "paperfigs: %s started\n", e.Experiment)
			case runner.KindExperimentFinished:
				status := "done"
				if e.Err != nil {
					status = "error: " + e.Err.Error()
				}
				fmt.Fprintf(os.Stderr, "paperfigs: %s %s (%.1fs)\n",
					e.Experiment, status, e.Elapsed.Seconds())
			case runner.KindExperimentResumed:
				fmt.Fprintf(os.Stderr, "paperfigs: %s resumed from checkpoint (saved run took %.1fs)\n",
					e.Experiment, e.Elapsed.Seconds())
			case runner.KindAttemptFailed:
				fmt.Fprintf(os.Stderr, "paperfigs: %s attempt %d failed: %v\n",
					e.Experiment, e.Attempt, e.Err)
			case runner.KindRetrying:
				fmt.Fprintf(os.Stderr, "paperfigs: %s retrying (attempt %d) after %v backoff\n",
					e.Experiment, e.Attempt, e.Elapsed)
			case runner.KindCheckpointFailed:
				fmt.Fprintf(os.Stderr, "paperfigs: %s checkpoint not saved: %v\n",
					e.Experiment, e.Err)
			case runner.KindDatasetDone:
				fmt.Fprintf(os.Stderr, "paperfigs: %s: %s %d/%d\n",
					e.Experiment, e.Dataset, e.Done, e.Total)
			}
		})
	}

	r := &runner.Runner{Jobs: *jobs, Observer: obs, Checkpoint: ckpt}
	if inject != nil {
		r.WrapRun = inject.wrap
	}
	report, runErr := r.Run(ctx, cfg, keys...)
	if report == nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", runErr)
		return 1
	}

	// Render in request order regardless of completion order — with
	// per-experiment seeding this output is byte-identical for any
	// -jobs value, and resumed artifacts replay the recorded bytes.
	fmt.Printf("# paperfigs: scale=%v sources=%d maxwalk=%d seed=%d\n\n",
		cfg.Scale, cfg.Sources, cfg.MaxWalk, cfg.Seed)
	failed := false
	for _, e := range report.Experiments {
		if e.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", e.ID, e.Err)
			continue
		}
		fmt.Printf("== %s (%s) ==\n%s\n", e.ID, e.Name, e.Result.Render())
		if err := writeArtifact(*csvDir, e.ID, ".csv", e.Result.CSV); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: csv: %v\n", e.ID, err)
			return 1
		}
		if err := writeArtifact(*jsonDir, e.ID, ".json", e.Result.JSON); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: json: %v\n", e.ID, err)
			return 1
		}
		if e.Telemetry != nil {
			if err := writeArtifact(*csvDir, e.ID, ".telemetry.csv", e.Telemetry.CSV); err != nil {
				fmt.Fprintf(os.Stderr, "paperfigs: %s: telemetry csv: %v\n", e.ID, err)
				return 1
			}
			if err := writeArtifact(*jsonDir, e.ID, ".telemetry.json", e.Telemetry.JSON); err != nil {
				fmt.Fprintf(os.Stderr, "paperfigs: %s: telemetry json: %v\n", e.ID, err)
				return 1
			}
		}
	}
	fmt.Fprint(os.Stderr, report.Summary())
	if *telemetryOn {
		fmt.Fprint(os.Stderr, report.TelemetryTable())
	}
	if runErr != nil || failed {
		if runErr != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", runErr)
		}
		return 1
	}
	return 0
}

// saveOnly records checkpoints without ever replaying them — the
// behavior of -checkpoint without -resume.
type saveOnly struct{ *checkpoint.Store }

func (saveOnly) Lookup(string, runner.Config) (runner.CheckpointEntry, bool) {
	return runner.CheckpointEntry{}, false
}

// writeArtifact writes one artifact file when dir is set.
func writeArtifact(dir, id, ext string, emit func(w io.Writer) error) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, id+ext)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = emit(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
