// Command paperfigs regenerates every table and figure of the
// paper's evaluation at a configurable scale, rendering them as text
// tables and ASCII charts and, with -csv, writing the raw data as CSV
// files for external plotting.
//
// Usage:
//
//	paperfigs                        # everything at the default scale
//	paperfigs -only table1,fig8      # a subset
//	paperfigs -csv out/              # also write out/<artifact>.csv
//	paperfigs -scale 0.01 -sources 1000 -seed 7
//
// Artifact names: table1, fig1, fig2, fig3, fig4, fig5, fig6, fig7,
// fig8, attack, conductance, whanau, trust, detection, defenses,
// whanau-lookup.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mixtime/internal/experiments"
)

// result couples an artifact's rendered text with its CSV emitter.
type result struct {
	text string
	csv  func(io.Writer) error
}

func main() {
	scale := flag.Float64("scale", 0.005, "dataset scale factor")
	sources := flag.Int("sources", 200, "sampled sources per graph")
	maxWalk := flag.Int("maxwalk", 500, "maximum propagated walk length")
	seed := flag.Uint64("seed", 1, "random seed")
	only := flag.String("only", "", "comma-separated artifact subset")
	csvDir := flag.String("csv", "", "directory to write <artifact>.csv files")
	flag.Parse()

	cfg := experiments.Config{
		Scale:   *scale,
		Sources: *sources,
		MaxWalk: *maxWalk,
		Seed:    *seed,
	}
	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
	}

	type artifact struct {
		name string
		run  func() (result, error)
	}
	artifacts := []artifact{
		{"table1", func() (result, error) {
			rows, err := experiments.Table1(cfg)
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderTable1(rows),
				func(w io.Writer) error { return experiments.Table1CSV(w, rows) }}, nil
		}},
		{"fig1", func() (result, error) {
			curves, err := experiments.Figure1(cfg)
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderBoundCurves("Figure 1: lower bound of the mixing time — small datasets", curves),
				func(w io.Writer) error { return experiments.BoundCurvesCSV(w, curves) }}, nil
		}},
		{"fig2", func() (result, error) {
			curves, err := experiments.Figure2(cfg)
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderBoundCurves("Figure 2: lower bound of the mixing time — large datasets", curves),
				func(w io.Writer) error { return experiments.BoundCurvesCSV(w, curves) }}, nil
		}},
		{"fig3", func() (result, error) {
			rows, err := experiments.Figure3(cfg)
			if err != nil {
				return result{}, err
			}
			return result{renderCDFGroups("Figure 3", rows, []string{"physics-1", "physics-2", "physics-3"}),
				func(w io.Writer) error { return experiments.DistanceCDFsCSV(w, rows) }}, nil
		}},
		{"fig4", func() (result, error) {
			rows, err := experiments.Figure4(cfg)
			if err != nil {
				return result{}, err
			}
			return result{renderCDFGroups("Figure 4", rows, []string{"physics-2", "physics-3"}),
				func(w io.Writer) error { return experiments.DistanceCDFsCSV(w, rows) }}, nil
		}},
		{"fig5", func() (result, error) {
			curves, err := experiments.Figure5(cfg)
			if err != nil {
				return result{}, err
			}
			var b strings.Builder
			for _, c := range curves {
				b.WriteString(experiments.RenderFig5(c))
				b.WriteByte('\n')
			}
			return result{b.String(),
				func(w io.Writer) error { return experiments.Fig5CSV(w, curves) }}, nil
		}},
		{"fig6", func() (result, error) {
			rows, err := experiments.Figure6(cfg)
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderFig6(rows),
				func(w io.Writer) error { return experiments.Fig6CSV(w, rows) }}, nil
		}},
		{"fig7", func() (result, error) {
			panels, err := experiments.Figure7(cfg)
			if err != nil {
				return result{}, err
			}
			var b strings.Builder
			for _, p := range panels {
				b.WriteString(experiments.RenderFig7Panel(p))
				b.WriteByte('\n')
			}
			return result{b.String(),
				func(w io.Writer) error { return experiments.Fig7CSV(w, panels) }}, nil
		}},
		{"fig8", func() (result, error) {
			curves, err := experiments.Figure8(experiments.Fig8Config{Config: cfg})
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderFig8(curves),
				func(w io.Writer) error { return experiments.Fig8CSV(w, curves) }}, nil
		}},
		{"attack", func() (result, error) {
			rows, err := experiments.SybilAttack(experiments.SybilAttackConfig{Config: cfg})
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderSybilAttack(rows),
				func(w io.Writer) error { return experiments.SybilAttackCSV(w, rows) }}, nil
		}},
		{"conductance", func() (result, error) {
			rows, err := experiments.Conductance(cfg)
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderConductance(rows),
				func(w io.Writer) error { return experiments.ConductanceCSV(w, rows) }}, nil
		}},
		{"whanau", func() (result, error) {
			rows, err := experiments.Whanau(cfg)
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderWhanau(rows),
				func(w io.Writer) error { return experiments.WhanauCSV(w, rows) }}, nil
		}},
		{"trust", func() (result, error) {
			rows, err := experiments.TrustModels(cfg)
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderTrust(rows),
				func(w io.Writer) error { return experiments.TrustCSV(w, rows) }}, nil
		}},
		{"detection", func() (result, error) {
			rows, err := experiments.Detection(experiments.DetectionConfig{Config: cfg})
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderDetection(rows),
				func(w io.Writer) error { return experiments.DetectionCSV(w, rows) }}, nil
		}},
		{"defenses", func() (result, error) {
			rows, err := experiments.DefenseComparison(experiments.DefenseComparisonConfig{Config: cfg})
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderDefenseComparison(rows),
				func(w io.Writer) error { return experiments.DefenseComparisonCSV(w, rows) }}, nil
		}},
		{"whanau-lookup", func() (result, error) {
			rows, err := experiments.WhanauLookup(cfg)
			if err != nil {
				return result{}, err
			}
			return result{experiments.RenderWhanauLookup(rows),
				func(w io.Writer) error { return experiments.WhanauLookupCSV(w, rows) }}, nil
		}},
	}

	fmt.Printf("# paperfigs: scale=%v sources=%d maxwalk=%d seed=%d\n\n",
		cfg.Scale, cfg.Sources, cfg.MaxWalk, cfg.Seed)
	for _, a := range artifacts {
		if !selected(a.name) {
			continue
		}
		start := time.Now()
		res, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", a.name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", a.name, time.Since(start).Seconds(), res.text)
		if *csvDir != "" && res.csv != nil {
			path := filepath.Join(*csvDir, a.name+".csv")
			f, err := os.Create(path)
			if err == nil {
				err = res.csv(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperfigs: %s: csv: %v\n", a.name, err)
				os.Exit(1)
			}
		}
	}
}

// renderCDFGroups draws one chart per dataset from a long-form CDF
// row set.
func renderCDFGroups(figure string, rows []experiments.DistanceCDF, order []string) string {
	var b strings.Builder
	for _, ds := range order {
		var sub []experiments.DistanceCDF
		for _, r := range rows {
			if r.Dataset == ds {
				sub = append(sub, r)
			}
		}
		b.WriteString(experiments.RenderDistanceCDFs(
			fmt.Sprintf("%s (%s): CDF of variation distance", figure, ds), sub))
		b.WriteByte('\n')
	}
	return b.String()
}
