// Command paperfigs regenerates every table and figure of the
// paper's evaluation at a configurable scale, rendering them as text
// tables and ASCII charts and, with -csv/-json, writing the raw data
// for external plotting.
//
// It is a thin shell over internal/runner: every artifact registers
// there under its DESIGN.md §5 ID, and the runner schedules the
// requested subset across a worker pool. Experiments derive all
// randomness from -seed, so `-jobs 4` renders byte-identical output
// to `-jobs 1`. Artifact text goes to stdout; progress and the run
// summary go to stderr.
//
// Usage:
//
//	paperfigs                        # everything at the default scale
//	paperfigs -only T1,F8            # a subset (IDs or legacy names)
//	paperfigs -only table1,fig8      # same subset, legacy names
//	paperfigs -jobs 4                # schedule across 4 workers
//	paperfigs -timeout 2m            # cancel everything at the deadline
//	paperfigs -csv out/ -json out/   # also write out/<id>.{csv,json}
//	paperfigs -scale 0.01 -sources 1000 -seed 7
//	paperfigs -block 16 -workers 2   # propagation block size, kernel workers
//
// IDs: T1, F1–F8, X1–X7. Legacy names: table1, fig1..fig8, attack,
// conductance, whanau, trust, detection, defenses, whanau-lookup.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"mixtime/internal/cliutil"
	"mixtime/internal/experiments"
	"mixtime/internal/runner"
	"mixtime/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 0.005, "dataset scale factor")
	sources := flag.Int("sources", runner.DefaultSources, "sampled sources per graph")
	maxWalk := flag.Int("maxwalk", runner.DefaultMaxWalk, "maximum propagated walk length")
	seed := flag.Uint64("seed", runner.DefaultSeed, "random seed")
	block := flag.Int("block", runner.DefaultBlockSize, "sources propagated per blocked kernel pass")
	workers := flag.Int("workers", 0, "kernel worker goroutines (0 = auto, 1 = sequential)")
	only := flag.String("only", "", "comma-separated subset (IDs like T1,F3 or legacy names)")
	jobs := flag.Int("jobs", 1, "experiments to run in parallel (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
	csvDir := flag.String("csv", "", "directory to write <id>.csv files")
	jsonDir := flag.String("json", "", "directory to write <id>.json files")
	quiet := flag.Bool("q", false, "suppress per-event progress on stderr")
	listOnly := flag.Bool("list", false, "list registered experiments and exit")
	telemetryOn := flag.Bool("telemetry", false, "collect kernel counters; table on stderr, plus <id>.telemetry.{csv,json} with -csv/-json")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *listOnly {
		for _, d := range runner.Default().Defs() {
			fmt.Printf("%-4s %-14s %s\n", d.ID, d.Name, d.Title)
		}
		return
	}

	stopProfiles, err := cliutil.StartProfiles(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	cfg := experiments.Config{
		Scale:       *scale,
		Sources:     *sources,
		MaxWalk:     *maxWalk,
		Seed:        *seed,
		SpectralTol: runner.DefaultSpectralTol,
		BlockSize:   *block,
		Workers:     *workers,
	}
	if *telemetryOn {
		cfg.Collector = telemetry.New()
	}
	var keys []string
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				keys = append(keys, name)
			}
		}
	}
	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "paperfigs:", err)
				os.Exit(1)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var obs runner.Observer
	if !*quiet {
		obs = runner.ObserverFunc(func(e runner.Event) {
			switch e.Kind {
			case runner.KindExperimentStarted:
				fmt.Fprintf(os.Stderr, "paperfigs: %s started\n", e.Experiment)
			case runner.KindExperimentFinished:
				status := "done"
				if e.Err != nil {
					status = "error: " + e.Err.Error()
				}
				fmt.Fprintf(os.Stderr, "paperfigs: %s %s (%.1fs)\n",
					e.Experiment, status, e.Elapsed.Seconds())
			case runner.KindDatasetDone:
				fmt.Fprintf(os.Stderr, "paperfigs: %s: %s %d/%d\n",
					e.Experiment, e.Dataset, e.Done, e.Total)
			}
		})
	}

	r := &runner.Runner{Jobs: *jobs, Observer: obs}
	report, runErr := r.Run(ctx, cfg, keys...)
	if report == nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", runErr)
		os.Exit(1)
	}

	// Render in request order regardless of completion order — with
	// per-experiment seeding this output is byte-identical for any
	// -jobs value.
	fmt.Printf("# paperfigs: scale=%v sources=%d maxwalk=%d seed=%d\n\n",
		cfg.Scale, cfg.Sources, cfg.MaxWalk, cfg.Seed)
	failed := false
	for _, e := range report.Experiments {
		if e.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", e.ID, e.Err)
			continue
		}
		fmt.Printf("== %s (%s) ==\n%s\n", e.ID, e.Name, e.Result.Render())
		if err := writeArtifact(*csvDir, e.ID, ".csv", e.Result.CSV); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: csv: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := writeArtifact(*jsonDir, e.ID, ".json", e.Result.JSON); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: json: %v\n", e.ID, err)
			os.Exit(1)
		}
		if e.Telemetry != nil {
			if err := writeArtifact(*csvDir, e.ID, ".telemetry.csv", e.Telemetry.CSV); err != nil {
				fmt.Fprintf(os.Stderr, "paperfigs: %s: telemetry csv: %v\n", e.ID, err)
				os.Exit(1)
			}
			if err := writeArtifact(*jsonDir, e.ID, ".telemetry.json", e.Telemetry.JSON); err != nil {
				fmt.Fprintf(os.Stderr, "paperfigs: %s: telemetry json: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprint(os.Stderr, report.Summary())
	if *telemetryOn {
		fmt.Fprint(os.Stderr, report.TelemetryTable())
	}
	if runErr != nil || failed {
		if runErr != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", runErr)
		}
		os.Exit(1)
	}
}

// writeArtifact writes one artifact file when dir is set.
func writeArtifact(dir, id, ext string, emit func(w io.Writer) error) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, id+ext)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = emit(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
