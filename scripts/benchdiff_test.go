package main

import (
	"regexp"
	"strings"
	"testing"
)

func entry(name string, ns float64) benchEntry {
	return benchEntry{Name: name, Iterations: 100, NsPerOp: ns}
}

func memEntry(name string, ns, bytes, allocs float64) benchEntry {
	return benchEntry{Name: name, Iterations: 100, NsPerOp: ns,
		BytesPerOp: &bytes, AllocsPerOp: &allocs}
}

func TestNormalizeNameStripsCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkStepBlock/B=8-64":  "BenchmarkStepBlock/B=8",
		"BenchmarkSLEMPower-4":       "BenchmarkSLEMPower",
		"BenchmarkApplyParallel":     "BenchmarkApplyParallel",
		"BenchmarkTrace/maxT=500-16": "BenchmarkTrace/maxT=500",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiffFlagsSyntheticRegression(t *testing.T) {
	// A synthetic >15% ns/op growth must trip the gate.
	old := []benchEntry{
		entry("BenchmarkStepBlock/B=8-64", 1000),
		entry("BenchmarkSLEMPower-64", 5000),
	}
	new := []benchEntry{
		entry("BenchmarkStepBlock/B=8-64", 1200), // +20%: regression
		entry("BenchmarkSLEMPower-64", 5100),     // +2%: fine
	}
	lines, regressed := diffSnapshots(old, new, 0.15)
	if !regressed {
		t.Fatal("a +20%% ns/op growth above a 15%% threshold must regress")
	}
	var hit *diffLine
	for i := range lines {
		if lines[i].Name == "BenchmarkStepBlock/B=8" {
			hit = &lines[i]
		}
	}
	if hit == nil {
		t.Fatal("regressed benchmark missing from report")
	}
	if hit.Status != "REGRESSED" || !hit.Regressn {
		t.Errorf("status = %q (regressn=%v), want REGRESSED", hit.Status, hit.Regressn)
	}
	if got := hit.Delta; got < 0.19 || got > 0.21 {
		t.Errorf("delta = %v, want ~0.20", got)
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	old := []benchEntry{entry("BenchmarkA-8", 1000), entry("BenchmarkB-8", 2000)}
	new := []benchEntry{entry("BenchmarkA-8", 1140), entry("BenchmarkB-8", 1800)}
	lines, regressed := diffSnapshots(old, new, 0.15)
	if regressed {
		t.Fatalf("+14%%/-10%% must pass a 15%% threshold: %+v", lines)
	}
	if lines[1].Status != "ok" {
		t.Errorf("BenchmarkB status = %q, want ok", lines[1].Status)
	}
}

func TestDiffImprovementReported(t *testing.T) {
	old := []benchEntry{entry("BenchmarkA-8", 1000)}
	new := []benchEntry{entry("BenchmarkA-8", 500)}
	lines, regressed := diffSnapshots(old, new, 0.15)
	if regressed {
		t.Fatal("an improvement must not regress")
	}
	if lines[0].Status != "improved" {
		t.Errorf("status = %q, want improved", lines[0].Status)
	}
}

func TestDiffAddedAndRemovedNeverFail(t *testing.T) {
	old := []benchEntry{entry("BenchmarkGone-8", 1000)}
	new := []benchEntry{entry("BenchmarkNew-8", 99999)}
	lines, regressed := diffSnapshots(old, new, 0.15)
	if regressed {
		t.Fatal("added/removed benchmarks must not fail the gate")
	}
	statuses := map[string]string{}
	for _, l := range lines {
		statuses[l.Name] = l.Status
	}
	if statuses["BenchmarkGone"] != "removed" || statuses["BenchmarkNew"] != "added" {
		t.Errorf("statuses = %v, want removed/added", statuses)
	}
}

func TestDiffCPUSuffixAligned(t *testing.T) {
	// The same benchmark recorded at different GOMAXPROCS must still
	// pair up (and regress when slower).
	old := []benchEntry{entry("BenchmarkA-4", 1000)}
	new := []benchEntry{entry("BenchmarkA-64", 2000)}
	_, regressed := diffSnapshots(old, new, 0.15)
	if !regressed {
		t.Fatal("suffix-normalized names must pair across core counts")
	}
}

func TestRenderDiffMentionsRegression(t *testing.T) {
	old := []benchEntry{entry("BenchmarkA-8", 1000)}
	new := []benchEntry{entry("BenchmarkA-8", 2000)}
	lines, _ := diffSnapshots(old, new, 0.15)
	out := renderDiff(lines, 0.15)
	for _, want := range []string{"BenchmarkA", "REGRESSED", "+100.0%", "threshold: +15%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDiffFlagsSyntheticAllocRegression(t *testing.T) {
	// A kernel that gained a single alloc/op must trip the gate even
	// with identical ns/op (allocation counts are deterministic, so
	// there is no noise to tolerate).
	old := []benchEntry{memEntry("BenchmarkStepBlock/B=8-1", 1000, 0, 0)}
	new := []benchEntry{memEntry("BenchmarkStepBlock/B=8-1", 1000, 48, 1)}
	lines, regressed := diffSnapshots(old, new, 0.15)
	if !regressed {
		t.Fatal("0 -> 1 allocs/op must regress")
	}
	if !strings.Contains(lines[0].Status, "allocs/op") {
		t.Errorf("status = %q, want an allocs/op mention", lines[0].Status)
	}

	// B/op growth alone (same alloc count, bigger allocations) also
	// gates.
	old = []benchEntry{memEntry("BenchmarkTrace-1", 1000, 64, 2)}
	new = []benchEntry{memEntry("BenchmarkTrace-1", 1000, 128, 2)}
	lines, regressed = diffSnapshots(old, new, 0.15)
	if !regressed || !strings.Contains(lines[0].Status, "B/op") {
		t.Errorf("B/op growth not flagged: %+v", lines)
	}

	// Absent -benchmem data on either side gates nothing.
	old = []benchEntry{entry("BenchmarkStep-1", 1000)}
	new = []benchEntry{memEntry("BenchmarkStep-1", 1000, 999, 9)}
	if _, regressed := diffSnapshots(old, new, 0.15); regressed {
		t.Fatal("an old snapshot without alloc data must not gate")
	}
}

func TestZeroAllocViolations(t *testing.T) {
	re := regexp.MustCompile(`^BenchmarkStep`)
	entries := []benchEntry{
		memEntry("BenchmarkStep-1", 100, 0, 0),
		memEntry("BenchmarkStepBlock/B=8-1", 100, 32, 1),             // violation
		memEntry("BenchmarkTraceSampleBlocked/B=8-1", 100, 4096, 12), // unmatched: fine
		entry("BenchmarkStepCollector-1", 100),                       // no data: not certified, not failed
	}
	bad := zeroAllocViolations(entries, re)
	if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkStepBlock/B=8") {
		t.Fatalf("violations = %v, want exactly the StepBlock entry", bad)
	}
	if bad = zeroAllocViolations(entries[:1], re); len(bad) != 0 {
		t.Fatalf("clean kernel flagged: %v", bad)
	}
}

func TestDedupeMinKeepsFastestRepetition(t *testing.T) {
	entries := []benchEntry{
		{Name: "BenchmarkStep-8", Iterations: 100, NsPerOp: 120},
		{Name: "BenchmarkOther-8", Iterations: 50, NsPerOp: 900},
		{Name: "BenchmarkStep-8", Iterations: 130, NsPerOp: 95},
		{Name: "BenchmarkStep-8", Iterations: 110, NsPerOp: 101},
	}
	got := dedupeMin(entries)
	if len(got) != 2 {
		t.Fatalf("dedupeMin kept %d entries, want 2: %+v", len(got), got)
	}
	if got[0].NsPerOp != 95 || got[0].Iterations != 130 {
		t.Errorf("fastest repetition not kept: got %+v", got[0])
	}
	if got[1].Name != "BenchmarkOther-8" {
		t.Errorf("first-appearance order not preserved: got %+v", got)
	}
}
