package main

import (
	"strings"
	"testing"
)

func entry(name string, ns float64) benchEntry {
	return benchEntry{Name: name, Iterations: 100, NsPerOp: ns}
}

func TestNormalizeNameStripsCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkStepBlock/B=8-64":  "BenchmarkStepBlock/B=8",
		"BenchmarkSLEMPower-4":       "BenchmarkSLEMPower",
		"BenchmarkApplyParallel":     "BenchmarkApplyParallel",
		"BenchmarkTrace/maxT=500-16": "BenchmarkTrace/maxT=500",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiffFlagsSyntheticRegression(t *testing.T) {
	// A synthetic >15% ns/op growth must trip the gate.
	old := []benchEntry{
		entry("BenchmarkStepBlock/B=8-64", 1000),
		entry("BenchmarkSLEMPower-64", 5000),
	}
	new := []benchEntry{
		entry("BenchmarkStepBlock/B=8-64", 1200), // +20%: regression
		entry("BenchmarkSLEMPower-64", 5100),     // +2%: fine
	}
	lines, regressed := diffSnapshots(old, new, 0.15)
	if !regressed {
		t.Fatal("a +20%% ns/op growth above a 15%% threshold must regress")
	}
	var hit *diffLine
	for i := range lines {
		if lines[i].Name == "BenchmarkStepBlock/B=8" {
			hit = &lines[i]
		}
	}
	if hit == nil {
		t.Fatal("regressed benchmark missing from report")
	}
	if hit.Status != "REGRESSED" || !hit.Regressn {
		t.Errorf("status = %q (regressn=%v), want REGRESSED", hit.Status, hit.Regressn)
	}
	if got := hit.Delta; got < 0.19 || got > 0.21 {
		t.Errorf("delta = %v, want ~0.20", got)
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	old := []benchEntry{entry("BenchmarkA-8", 1000), entry("BenchmarkB-8", 2000)}
	new := []benchEntry{entry("BenchmarkA-8", 1140), entry("BenchmarkB-8", 1800)}
	lines, regressed := diffSnapshots(old, new, 0.15)
	if regressed {
		t.Fatalf("+14%%/-10%% must pass a 15%% threshold: %+v", lines)
	}
	if lines[1].Status != "ok" {
		t.Errorf("BenchmarkB status = %q, want ok", lines[1].Status)
	}
}

func TestDiffImprovementReported(t *testing.T) {
	old := []benchEntry{entry("BenchmarkA-8", 1000)}
	new := []benchEntry{entry("BenchmarkA-8", 500)}
	lines, regressed := diffSnapshots(old, new, 0.15)
	if regressed {
		t.Fatal("an improvement must not regress")
	}
	if lines[0].Status != "improved" {
		t.Errorf("status = %q, want improved", lines[0].Status)
	}
}

func TestDiffAddedAndRemovedNeverFail(t *testing.T) {
	old := []benchEntry{entry("BenchmarkGone-8", 1000)}
	new := []benchEntry{entry("BenchmarkNew-8", 99999)}
	lines, regressed := diffSnapshots(old, new, 0.15)
	if regressed {
		t.Fatal("added/removed benchmarks must not fail the gate")
	}
	statuses := map[string]string{}
	for _, l := range lines {
		statuses[l.Name] = l.Status
	}
	if statuses["BenchmarkGone"] != "removed" || statuses["BenchmarkNew"] != "added" {
		t.Errorf("statuses = %v, want removed/added", statuses)
	}
}

func TestDiffCPUSuffixAligned(t *testing.T) {
	// The same benchmark recorded at different GOMAXPROCS must still
	// pair up (and regress when slower).
	old := []benchEntry{entry("BenchmarkA-4", 1000)}
	new := []benchEntry{entry("BenchmarkA-64", 2000)}
	_, regressed := diffSnapshots(old, new, 0.15)
	if !regressed {
		t.Fatal("suffix-normalized names must pair across core counts")
	}
}

func TestRenderDiffMentionsRegression(t *testing.T) {
	old := []benchEntry{entry("BenchmarkA-8", 1000)}
	new := []benchEntry{entry("BenchmarkA-8", 2000)}
	lines, _ := diffSnapshots(old, new, 0.15)
	out := renderDiff(lines, 0.15)
	for _, want := range []string{"BenchmarkA", "REGRESSED", "+100.0%", "threshold: +15%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDedupeMinKeepsFastestRepetition(t *testing.T) {
	entries := []benchEntry{
		{Name: "BenchmarkStep-8", Iterations: 100, NsPerOp: 120},
		{Name: "BenchmarkOther-8", Iterations: 50, NsPerOp: 900},
		{Name: "BenchmarkStep-8", Iterations: 130, NsPerOp: 95},
		{Name: "BenchmarkStep-8", Iterations: 110, NsPerOp: 101},
	}
	got := dedupeMin(entries)
	if len(got) != 2 {
		t.Fatalf("dedupeMin kept %d entries, want 2: %+v", len(got), got)
	}
	if got[0].NsPerOp != 95 || got[0].Iterations != 130 {
		t.Errorf("fastest repetition not kept: got %+v", got[0])
	}
	if got[1].Name != "BenchmarkOther-8" {
		t.Errorf("first-appearance order not preserved: got %+v", got)
	}
}
