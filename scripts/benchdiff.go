// Command benchdiff compares two benchmark snapshots produced by
// scripts/bench.sh and fails when a kernel regressed.
//
// Usage:
//
//	go run ./scripts <old.json> <new.json> [-threshold 0.15]
//
// Each snapshot is a JSON array of {name, iterations, ns_per_op}
// entries (plus optional extra metrics, which are ignored). Benchmark
// names are normalized by stripping the trailing -N GOMAXPROCS suffix
// that `go test -bench` appends, so snapshots taken on machines with
// different core counts still line up. Duplicate entries for one
// benchmark (a snapshot recorded with `go test -count N`) collapse to
// the fastest repetition, the noise-robust estimator.
//
// For every benchmark present in both snapshots, the tool prints the
// old and new ns/op and the relative delta. A benchmark whose ns/op
// grew by more than the threshold (default 15%) is a regression; the
// process exits 1 if any regressed. Benchmarks present in only one
// snapshot are listed as added/removed but never fail the gate — new
// kernels have no baseline and removed ones have no present.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// benchEntry is one benchmark result in a bench.sh snapshot. Custom
// throughput metrics (ns/source, matvecs, ...) are ignored; ns/op is
// regression-gated, and the -benchmem pair — when the snapshot
// carries it — is gated too: allocation counts are deterministic, so
// any growth is a real code change, not noise. Pointers distinguish
// "absent" (older snapshots) from a recorded zero.
type benchEntry struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// cpuSuffix matches the -N GOMAXPROCS suffix go test appends to
// benchmark names (e.g. BenchmarkStepBlock/B=8-64).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// dedupeMin collapses duplicate entries for the same normalized name
// to the fastest one, preserving first-appearance order. Snapshots
// recorded with `go test -count N` carry one entry per repetition;
// min ns/op is the noise-robust estimator (scheduler hiccups only
// ever make a run slower, never faster).
func dedupeMin(entries []benchEntry) []benchEntry {
	best := make(map[string]int, len(entries))
	out := make([]benchEntry, 0, len(entries))
	for _, e := range entries {
		n := normalizeName(e.Name)
		if i, ok := best[n]; ok {
			if e.NsPerOp < out[i].NsPerOp {
				out[i] = e
			}
			continue
		}
		best[n] = len(out)
		out = append(out, e)
	}
	return out
}

// normalizeName strips the GOMAXPROCS suffix so snapshots from
// machines with different core counts compare by benchmark identity.
func normalizeName(name string) string {
	return cpuSuffix.ReplaceAllString(name, "")
}

// diffLine is one row of the comparison report.
type diffLine struct {
	Name     string
	OldNs    float64
	NewNs    float64
	Delta    float64 // (new-old)/old; 0 when either side is missing
	Status   string  // "ok", "REGRESSED", "improved", "added", "removed"
	Regressn bool
}

// allocRegression reports whether the -benchmem pair regressed: a
// kernel that was allocation-free must stay allocation-free (any new
// alloc is a regression), and one that allocated may not allocate
// more. Both counters are deterministic per code version, so the
// comparison is exact, not thresholded. Absent data on either side
// (older snapshot without -benchmem) gates nothing.
func allocRegression(o, e benchEntry) (string, bool) {
	if o.AllocsPerOp != nil && e.AllocsPerOp != nil && *e.AllocsPerOp > *o.AllocsPerOp {
		return fmt.Sprintf("allocs/op %v -> %v", *o.AllocsPerOp, *e.AllocsPerOp), true
	}
	if o.BytesPerOp != nil && e.BytesPerOp != nil && *e.BytesPerOp > *o.BytesPerOp {
		return fmt.Sprintf("B/op %v -> %v", *o.BytesPerOp, *e.BytesPerOp), true
	}
	return "", false
}

// zeroAllocViolations returns the entries matching re whose recorded
// allocs/op is nonzero — the steady-state kernel gate: hot loops must
// not touch the allocator at all. Entries without -benchmem data
// match nothing (the caller's snapshot is too old to certify).
func zeroAllocViolations(entries []benchEntry, re *regexp.Regexp) []string {
	var bad []string
	for _, e := range entries {
		n := normalizeName(e.Name)
		if !re.MatchString(n) {
			continue
		}
		if e.AllocsPerOp != nil && *e.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("%s: %v allocs/op", n, *e.AllocsPerOp))
		}
	}
	return bad
}

// diffSnapshots compares two snapshots under a relative ns/op growth
// threshold and reports whether any benchmark regressed. Results are
// sorted by normalized name for stable output.
func diffSnapshots(old, new []benchEntry, threshold float64) (lines []diffLine, regressed bool) {
	oldBy := make(map[string]benchEntry, len(old))
	for _, e := range old {
		oldBy[normalizeName(e.Name)] = e
	}
	newBy := make(map[string]benchEntry, len(new))
	for _, e := range new {
		newBy[normalizeName(e.Name)] = e
	}
	names := make([]string, 0, len(oldBy)+len(newBy))
	for n := range oldBy {
		names = append(names, n)
	}
	for n := range newBy {
		if _, ok := oldBy[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		o, hasOld := oldBy[n]
		e, hasNew := newBy[n]
		l := diffLine{Name: n, OldNs: o.NsPerOp, NewNs: e.NsPerOp}
		switch {
		case !hasNew:
			l.Status = "removed"
		case !hasOld:
			l.Status = "added"
		case o.NsPerOp <= 0:
			// A degenerate baseline can't be regressed against.
			l.Status = "ok"
		default:
			l.Delta = (e.NsPerOp - o.NsPerOp) / o.NsPerOp
			switch {
			case l.Delta > threshold:
				l.Status = "REGRESSED"
				l.Regressn = true
				regressed = true
			case l.Delta < -threshold:
				l.Status = "improved"
			default:
				l.Status = "ok"
			}
			if why, bad := allocRegression(o, e); bad {
				l.Status = "REGRESSED(" + why + ")"
				l.Regressn = true
				regressed = true
			}
		}
		lines = append(lines, l)
	}
	return lines, regressed
}

// renderDiff formats the report as an aligned table.
func renderDiff(lines []diffLine, threshold float64) string {
	var b strings.Builder
	width := len("benchmark")
	for _, l := range lines {
		if len(l.Name) > width {
			width = len(l.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %14s  %14s  %8s  %s\n",
		width, "benchmark", "old ns/op", "new ns/op", "delta", "status")
	for _, l := range lines {
		oldNs, newNs, delta := "-", "-", "-"
		if l.Status != "added" {
			oldNs = fmt.Sprintf("%.1f", l.OldNs)
		}
		if l.Status != "removed" {
			newNs = fmt.Sprintf("%.1f", l.NewNs)
		}
		if l.Status != "added" && l.Status != "removed" {
			delta = fmt.Sprintf("%+.1f%%", 100*l.Delta)
		}
		fmt.Fprintf(&b, "%-*s  %14s  %14s  %8s  %s\n",
			width, l.Name, oldNs, newNs, delta, l.Status)
	}
	fmt.Fprintf(&b, "threshold: +%.0f%% ns/op\n", 100*threshold)
	return b.String()
}

// loadSnapshot reads one bench.sh JSON snapshot.
func loadSnapshot(path string) ([]benchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []benchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return dedupeMin(entries), nil
}

func main() {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.15, "relative ns/op growth that counts as a regression")
	zeroAlloc := fs.String("zeroalloc", "", "regexp of benchmarks in <new.json> that must report 0 allocs/op")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.15] [-zeroalloc REGEXP] <old.json> <new.json>")
		fs.PrintDefaults()
	}
	// Accept flags before or after the positional snapshots.
	var paths []string
	args := os.Args[1:]
	for len(args) > 0 {
		if err := fs.Parse(args); err != nil {
			os.Exit(2)
		}
		args = fs.Args()
		if len(args) > 0 {
			paths = append(paths, args[0])
			args = args[1:]
		}
	}
	if len(paths) != 2 {
		fs.Usage()
		os.Exit(2)
	}
	oldEntries, err := loadSnapshot(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newEntries, err := loadSnapshot(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	lines, regressed := diffSnapshots(oldEntries, newEntries, *threshold)
	fmt.Printf("benchdiff: %s -> %s\n%s", paths[0], paths[1], renderDiff(lines, *threshold))
	if *zeroAlloc != "" {
		re, err := regexp.Compile(*zeroAlloc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: -zeroalloc:", err)
			os.Exit(2)
		}
		if bad := zeroAllocViolations(newEntries, re); len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintln(os.Stderr, "benchdiff: zero-alloc gate:", b)
			}
			os.Exit(1)
		}
		fmt.Printf("zero-alloc gate (%s): clean\n", *zeroAlloc)
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "benchdiff: kernel regression above threshold")
		os.Exit(1)
	}
}
