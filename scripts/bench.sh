#!/bin/sh
# bench.sh — the kernel benchmark harness: runs the propagation and
# matvec kernel benchmarks (blocked SpMM at every width, the sharded
# parallel matvec, and the pre-existing sequential baselines) and
# writes a machine-readable snapshot to BENCH_PR3.json so kernel
# regressions are diffable across commits. Run from anywhere inside
# the repo; pass a different -benchtime via BENCHTIME.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.5s}"
OUT="${OUT:-BENCH_PR3.json}"
PATTERN='BenchmarkStepBlock|BenchmarkTraceSampleBlocked|BenchmarkApplyParallel|BenchmarkPropagationExact|BenchmarkSLEMPower|BenchmarkSLEMLanczos'

echo "== go test -bench ($BENCHTIME per benchmark) =="
raw=$(go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" .)
echo "$raw"

echo "== writing $OUT =="
echo "$raw" | awk -v out="$OUT" '
	/^Benchmark/ {
		name = $1
		iters = $2
		nsop = $3
		extra = ""
		# Optional custom metric pair, e.g. "14197 ns/source" or
		# "53 matvecs", after the ns/op pair.
		if (NF >= 6) {
			extra = sprintf(",\n    \"%s\": %s", $6, $5)
		}
		rows[++n] = sprintf("  {\n    \"name\": \"%s\",\n    \"iterations\": %s,\n    \"ns_per_op\": %s%s\n  }", name, iters, nsop, extra)
	}
	END {
		print "[" > out
		for (i = 1; i <= n; i++)
			print rows[i] (i < n ? "," : "") >> out
		print "]" >> out
	}
'

# The snapshot must be valid JSON for downstream tooling.
if command -v python3 >/dev/null 2>&1; then
	python3 -c "import json,sys; json.load(open('$OUT'))" || {
		echo "bench.sh: $OUT is not valid JSON" >&2
		exit 1
	}
fi

echo "wrote $OUT"
