#!/bin/sh
# bench.sh — the kernel benchmark harness: runs the propagation and
# matvec kernel benchmarks (blocked SpMM at every width, the sharded
# parallel matvec, the plain Step baseline with and without a
# telemetry collector, the Monte-Carlo walker kernel, the distributed
# walker-flood superstep kernel, and the pre-existing sequential
# baselines) with -benchmem and writes a machine-readable snapshot
# (ns/op plus B/op and allocs/op per benchmark) to BENCH_PR8.json so
# kernel regressions — time or allocation — are diffable across
# commits. The benchmarks live in the
# kernel packages themselves (internal/markov, internal/spectral,
# internal/distmix), so each bench binary links only its kernel's
# dependencies — code growth elsewhere in the repo cannot shift
# hot-loop binary layout and fake a regression in the diff below. After writing, the snapshot
# is diffed against the previous BENCH_*.json via scripts/benchdiff.go
# and the script fails on a >15% ns/op regression. The suite runs as
# COUNT (default 3) full passes — not `-count COUNT`, which repeats
# each benchmark back-to-back and keeps all of its repetitions inside
# the same host-noise phase — and the snapshot keeps each benchmark's
# fastest repetition, so a scheduler hiccup or a slow host phase
# cannot fake a regression.
# Run from anywhere inside the repo; pass a different -benchtime via
# BENCHTIME. Set SKIP_DIFF=1 to record a snapshot without gating
# (e.g. on a machine unrelated to the previous baseline).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.5s}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_PR8.json}"
PATTERN='BenchmarkStep$|BenchmarkStepCollector$|BenchmarkStepBlock|BenchmarkTraceSampleBlocked|BenchmarkMCTrace$|BenchmarkApplyParallel|BenchmarkPropagationExact|BenchmarkSLEMPower$|BenchmarkSLEMLanczos$|BenchmarkDistMixEstimate'
# The steady-state matvec kernels must never touch the allocator; the
# snapshot records allocs/op (-benchmem) and benchdiff enforces zero
# for this family. Trace-level benchmarks allocate their result
# buffers per op and are exempt (but still diffed for growth).
ZEROALLOC='^Benchmark(Step$|StepCollector$|StepBlock)'

echo "== go test -bench ($BENCHTIME per benchmark, $COUNT passes, keeping min) =="
raw=""
pass=1
while [ "$pass" -le "$COUNT" ]; do
	echo "-- pass $pass/$COUNT --"
	out=$(go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem -count 1 \
		./internal/markov ./internal/spectral ./internal/distmix)
	echo "$out"
	raw="$raw
$out"
	pass=$((pass + 1))
done

echo "== writing $OUT =="
echo "$raw" | awk -v out="$OUT" '
	/^Benchmark/ {
		name = $1
		iters = $2
		# Fields from $3 on are (value, unit) pairs: ns/op always,
		# then optional custom metrics (ns/source, matvecs, ...) and
		# the -benchmem pair (B/op, allocs/op). Walk them by unit so
		# the layout may vary per benchmark.
		nsop = ""; extra = ""; bop = ""; aop = ""
		for (i = 3; i < NF; i += 2) {
			val = $i; unit = $(i + 1)
			if (unit == "ns/op")           nsop = val
			else if (unit == "B/op")       bop = val
			else if (unit == "allocs/op")  aop = val
			else extra = sprintf(",\n    \"%s\": %s", unit, val)
		}
		if (nsop == "") next
		mem = ""
		if (bop != "" && aop != "")
			mem = sprintf(",\n    \"bytes_per_op\": %s,\n    \"allocs_per_op\": %s", bop, aop)
		# -count repeats every benchmark; keep the fastest
		# repetition (noise only ever slows a run down).
		if (!(name in best) || nsop + 0 < best[name] + 0) {
			if (!(name in best))
				order[++n] = name
			best[name] = nsop
			row[name] = sprintf("  {\n    \"name\": \"%s\",\n    \"iterations\": %s,\n    \"ns_per_op\": %s%s%s\n  }", name, iters, nsop, extra, mem)
		}
	}
	END {
		print "[" > out
		for (i = 1; i <= n; i++)
			print row[order[i]] (i < n ? "," : "") >> out
		print "]" >> out
	}
'

# The snapshot must be valid JSON for downstream tooling.
if command -v python3 >/dev/null 2>&1; then
	python3 -c "import json,sys; json.load(open('$OUT'))" || {
		echo "bench.sh: $OUT is not valid JSON" >&2
		exit 1
	}
fi

echo "wrote $OUT"

# Gate against the most recent previous snapshot, if one exists.
# "Previous" is decided by version-sorted name (BENCH_PR3 < BENCH_PR4
# < BENCH_PR10), the same ordering check.sh uses — mtimes scramble on
# fresh checkouts and can tie.
if [ "${SKIP_DIFF:-0}" = "1" ]; then
	echo "SKIP_DIFF=1: not diffing against a baseline"
	exit 0
fi
prev=$(ls BENCH_*.json 2>/dev/null | grep -Fxv "$OUT" | sort -V | tail -n 1 || true)
if [ -n "$prev" ]; then
	echo "== benchdiff $prev -> $OUT =="
	go run ./scripts -zeroalloc "$ZEROALLOC" "$prev" "$OUT"
else
	echo "no previous BENCH_*.json snapshot; skipping benchdiff"
fi
