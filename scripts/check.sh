#!/bin/sh
# check.sh — the pre-merge gate: formatting, vet, package-doc
# presence, the full test suite under the race detector, and (when at
# least two BENCH_*.json snapshots exist) the kernel benchmark
# regression diff. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== package docs =="
# Every package must carry a doc comment: some non-test file whose
# `package` clause is immediately preceded by a comment line. Build
# tags don't false-positive — gofmt keeps a blank line between
# //go:build and the package clause.
missing=""
for dir in $(go list -f '{{.Dir}}' ./...); do
	ok=0
	for f in "$dir"/*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		if awk '/^package /{ if (prev ~ /^\/\// || prev ~ /\*\/[[:space:]]*$/) found=1; exit } { prev=$0 } END{ exit !found }' "$f"; then
			ok=1
			break
		fi
	done
	if [ "$ok" -ne 1 ]; then
		missing="$missing $dir"
	fi
done
if [ -n "$missing" ]; then
	echo "packages missing a doc comment:" >&2
	for dir in $missing; do
		echo "  $dir" >&2
	done
	exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "== fault-tolerance race gate =="
# The retry/checkpoint machinery and the service's singleflight cache
# are the most concurrency-sensitive code in the repo; re-run them
# uncached so a cached pass can never mask a freshly introduced race.
go test -race -count=1 ./internal/runner ./internal/telemetry ./internal/checkpoint \
	./internal/api ./internal/service ./internal/distmix ./internal/evolve ./internal/faults

echo "== graphio fuzz corpus =="
# Execute the seed corpus of every fuzz target (no fuzzing engine —
# deterministic and fast). Longer exploration:
#   go test -fuzz=FuzzReadMIXG -fuzztime=30s ./internal/graphio
go test -run='^Fuzz' ./internal/graphio

echo "== mixtimed e2e smoke =="
# Boot the daemon on a random port, fire a mixload burst at it, and
# require zero errors plus the cache invariant: one distinct
# fingerprint means exactly one solve no matter how many requests.
smoke_dir=$(mktemp -d)
cleanup_smoke() {
	if [ -n "${smoke_pid:-}" ]; then
		kill "$smoke_pid" 2>/dev/null || true
		wait "$smoke_pid" 2>/dev/null || true
	fi
	rm -rf "$smoke_dir"
}
trap cleanup_smoke EXIT
go build -o "$smoke_dir/mixtimed" ./cmd/mixtimed
go build -o "$smoke_dir/mixload" ./cmd/mixload
"$smoke_dir/mixtimed" -datasets physics-1 -scale 0.002 -mutable physics-1 \
	-addr 127.0.0.1:0 -addr-file "$smoke_dir/addr" >"$smoke_dir/daemon.log" 2>&1 &
smoke_pid=$!
tries=0
while [ ! -s "$smoke_dir/addr" ]; do
	tries=$((tries + 1))
	if [ "$tries" -gt 100 ]; then
		echo "mixtimed never published its address" >&2
		cat "$smoke_dir/daemon.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$smoke_dir/addr")
"$smoke_dir/mixload" -addr "$addr" -op slem -n 40 -c 8 -distinct 1
solves=$(curl -s "http://$addr/stats" | grep -o '"service_solves": *[0-9]*' | grep -o '[0-9]*$')
if [ "${solves:-0}" != "1" ]; then
	echo "service_solves = ${solves:-missing}, want 1 (repeat queries must hit the cache)" >&2
	exit 1
fi
# Distributed estimator cross-check on the live daemon: the distmix
# answer must land within the DESIGN.md §11 tolerance —
# max(ceil(0.35·τ), 3) — of the sampled mixing time the cdf op
# measures by exact propagation over the same seed and sources, and
# the message-passing accounting must show real off-shard traffic.
# The walker budget is the documented default (64/node): physics-1 is
# the slowest-mixing substitute, and a starved budget's noise floor
# biases the estimate below the tolerance band (DESIGN.md §11.2).
dist_params='"params":{"seed":1,"sources":5,"eps":0.25,"max_walk":2000,"dist_walks":64,"dist_rounds":2000}'
cdf_json=$(curl -s -X POST "http://$addr/v1/query" \
	-d "{\"op\":\"cdf\",\"graph\":\"physics-1\",$dist_params}")
dist_json=$(curl -s -X POST "http://$addr/v1/query" \
	-d "{\"op\":\"distmix\",\"graph\":\"physics-1\",$dist_params}")
sampled_t=$(printf '%s' "$cdf_json" | grep -o '"sampled_t": *[0-9]*' | grep -o '[0-9]*$')
dist_tau=$(printf '%s' "$dist_json" | grep -o '"tau": *[0-9]*' | head -1 | grep -o '[0-9]*$')
offshard=$(printf '%s' "$dist_json" | grep -o '"offshard_messages": *[0-9]*' | grep -o '[0-9]*$')
if [ -z "${sampled_t:-}" ] || [ -z "${dist_tau:-}" ]; then
	echo "distmix smoke: missing tau fields" >&2
	echo "cdf: $cdf_json" >&2
	echo "distmix: $dist_json" >&2
	exit 1
fi
if [ "${offshard:-0}" -le 0 ]; then
	echo "distmix smoke: offshard_messages = ${offshard:-missing}, want > 0" >&2
	exit 1
fi
awk -v est="$dist_tau" -v exact="$sampled_t" 'BEGIN {
	tol = int(0.35 * exact) + (0.35 * exact > int(0.35 * exact) ? 1 : 0)
	if (tol < 3) tol = 3
	diff = est - exact; if (diff < 0) diff = -diff
	if (diff > tol) {
		printf "distmix smoke: tau %d vs sampled %d exceeds tolerance %d\n", est, exact, tol > "/dev/stderr"
		exit 1
	}
	printf "distmix tau %d vs sampled %d (tolerance %d) ok\n", est, exact, tol
}'
# Live-graph mutation smoke: a slem query is solved then cached; a
# POST /v1/mutate bumps the graph's version and must evict that cached
# result, so the repeated identical request misses under a new
# version-stamped fingerprint and costs exactly one new solve. This
# runs after the distmix cross-check — mutating physics-1 earlier
# would move the mixing time out of the §11 tolerance band.
mut_q='{"op":"slem","graph":"physics-1","params":{"seed":9}}'
fp_a=$(curl -s -X POST "http://$addr/v1/query" -d "$mut_q" |
	grep -o '"fingerprint": *"[^"]*"' | grep -o '[0-9a-f@v]*"$' | tr -d '"')
hit=$(curl -s -X POST "http://$addr/v1/query" -d "$mut_q" | grep -c '"cache_hit": *true' || true)
if [ -z "$fp_a" ] || [ "$hit" != "1" ]; then
	echo "mutation smoke: pre-mutation query did not cache (fp=$fp_a hit=$hit)" >&2
	exit 1
fi
solves_before=$(curl -s "http://$addr/stats" | grep -o '"service_solves": *[0-9]*' | grep -o '[0-9]*$')
mut_json=$(curl -s -X POST "http://$addr/v1/mutate" -d '{"graph":"physics-1","grow":3}')
evicted=$(printf '%s' "$mut_json" | grep -o '"evicted": *[0-9]*' | grep -o '[0-9]*$')
if [ "${evicted:-0}" -lt 1 ]; then
	echo "mutation smoke: mutation evicted ${evicted:-0} cached results, want >= 1" >&2
	echo "$mut_json" >&2
	exit 1
fi
post_json=$(curl -s -X POST "http://$addr/v1/query" -d "$mut_q")
fp_b=$(printf '%s' "$post_json" | grep -o '"fingerprint": *"[^"]*"' | grep -o '[0-9a-f@v]*"$' | tr -d '"')
if [ "$fp_a" = "$fp_b" ] || [ -z "$fp_b" ]; then
	echo "mutation smoke: fingerprint did not change across the mutation ($fp_a vs $fp_b)" >&2
	exit 1
fi
if printf '%s' "$post_json" | grep -q '"cache_hit": *true'; then
	echo "mutation smoke: post-mutation query served a stale cached result" >&2
	exit 1
fi
solves_after=$(curl -s "http://$addr/stats" | grep -o '"service_solves": *[0-9]*' | grep -o '[0-9]*$')
if [ "$((solves_after - solves_before))" != "1" ]; then
	echo "mutation smoke: post-mutation repeat cost $((solves_after - solves_before)) solves, want exactly 1" >&2
	exit 1
fi
echo "mutation smoke: evicted $evicted, re-solved once under a new fingerprint"
kill -INT "$smoke_pid"
wait "$smoke_pid" || { echo "mixtimed did not shut down cleanly" >&2; exit 1; }
smoke_pid=""
cleanup_smoke
trap - EXIT
echo "burst ok, 1 solve, graceful shutdown"

echo "== chaos smoke (fault injection + crash recovery) =="
# The overload-hardening gate (DESIGN.md §14), in two acts.
#
# Act 1: boot a deliberately tiny daemon (pool 2, queue 2, 100ms queue
# wait) with deterministic fault injection armed — the first four
# solves panic, every solve stalls 40ms — and fire a 16-way mixload
# burst at it with retries enabled. The burst must finish with ZERO
# hard errors while the shed and retried counts are both nonzero and
# the daemon counted the contained panics: overload and injected
# failure cost retries, never dropped requests or a dead process.
#
# Act 2: SIGKILL the daemon (no graceful flush), restart it over the
# same -cache-dir without injection, and repeat an exact query from
# before the kill. It must come back as a cache hit with exactly zero
# new solves: answers survive the crash.
chaos_dir=$(mktemp -d)
cleanup_chaos() {
	if [ -n "${chaos_pid:-}" ]; then
		kill -9 "$chaos_pid" 2>/dev/null || true
		wait "$chaos_pid" 2>/dev/null || true
	fi
	rm -rf "$chaos_dir"
}
trap cleanup_chaos EXIT
go build -o "$chaos_dir/mixtimed" ./cmd/mixtimed
go build -o "$chaos_dir/mixload" ./cmd/mixload
"$chaos_dir/mixtimed" -datasets physics-1 -scale 0.002 \
	-pool 2 -max-queue 2 -max-queue-wait 100ms \
	-cache-dir "$chaos_dir/cache" -inject 'seed=7,panic=1:4,latency=40ms' \
	-addr 127.0.0.1:0 -addr-file "$chaos_dir/addr" >"$chaos_dir/daemon.log" 2>&1 &
chaos_pid=$!
tries=0
while [ ! -s "$chaos_dir/addr" ]; do
	tries=$((tries + 1))
	if [ "$tries" -gt 100 ]; then
		echo "mixtimed (chaos) never published its address" >&2
		cat "$chaos_dir/daemon.log" >&2
		exit 1
	fi
	sleep 0.1
done
chaos_addr=$(cat "$chaos_dir/addr")
# 16 workers over capacity 4 (pool+queue) guarantees sheds; the capped
# always-fire panic spec guarantees exactly 4 contained panics; the
# retry budget is generous enough that every request finishes. A
# nonzero exit here (any hard error) fails the whole gate via set -e.
"$chaos_dir/mixload" -addr "$chaos_addr" -op slem -n 48 -c 16 -distinct 12 \
	-retries 12 -hedge 60ms >"$chaos_dir/load.out"
cat "$chaos_dir/load.out"
shed=$(grep -o '[0-9]* shed' "$chaos_dir/load.out" | grep -o '[0-9]*' || true)
retried=$(grep -o '[0-9]* retried' "$chaos_dir/load.out" | grep -o '[0-9]*' || true)
if [ "${shed:-0}" -le 0 ] || [ "${retried:-0}" -le 0 ]; then
	echo "chaos smoke: shed=${shed:-0} retried=${retried:-0}, want both > 0" >&2
	exit 1
fi
# Telemetry snapshots omit zero-valued counters, so every grep below
# may legitimately match nothing — `|| true` keeps set -e out of it
# and the ${var:-0} defaults treat "absent" as zero.
panics=$(curl -s "http://$chaos_addr/stats" | grep -o '"service_panics": *[0-9]*' | grep -o '[0-9]*$' || true)
if [ "${panics:-0}" -le 0 ]; then
	echo "chaos smoke: service_panics = ${panics:-0}, want > 0" >&2
	exit 1
fi
# A marker query whose exact body we replay after the crash.
chaos_q='{"op":"slem","graph":"physics-1","params":{"seed":77}}'
if ! curl -s -X POST "http://$chaos_addr/v1/query" -d "$chaos_q" | grep -q '"mu"'; then
	echo "chaos smoke: marker query failed pre-kill" >&2
	exit 1
fi
# The write-through is asynchronous with the answer: wait for all 13
# distinct results (12 burst fingerprints + the marker) to land on
# disk before pulling the plug.
tries=0
while :; do
	persisted=$(curl -s "http://$chaos_addr/stats" |
		grep -o '"service_persist_writes": *[0-9]*' | grep -o '[0-9]*$' || true)
	[ "${persisted:-0}" -ge 13 ] && break
	tries=$((tries + 1))
	if [ "$tries" -gt 100 ]; then
		echo "chaos smoke: only ${persisted:-0}/13 results persisted" >&2
		exit 1
	fi
	sleep 0.1
done
kill -9 "$chaos_pid"
wait "$chaos_pid" 2>/dev/null || true
chaos_pid=""
rm -f "$chaos_dir/addr"
"$chaos_dir/mixtimed" -datasets physics-1 -scale 0.002 \
	-cache-dir "$chaos_dir/cache" \
	-addr 127.0.0.1:0 -addr-file "$chaos_dir/addr" >"$chaos_dir/daemon2.log" 2>&1 &
chaos_pid=$!
tries=0
while [ ! -s "$chaos_dir/addr" ]; do
	tries=$((tries + 1))
	if [ "$tries" -gt 100 ]; then
		echo "mixtimed (chaos restart) never published its address" >&2
		cat "$chaos_dir/daemon2.log" >&2
		exit 1
	fi
	sleep 0.1
done
chaos_addr=$(cat "$chaos_dir/addr")
replay=$(curl -s -X POST "http://$chaos_addr/v1/query" -d "$chaos_q")
if ! printf '%s' "$replay" | grep -q '"cache_hit": *true'; then
	echo "chaos smoke: marker query missed the cache after the crash restart" >&2
	echo "$replay" >&2
	exit 1
fi
resolves=$(curl -s "http://$chaos_addr/stats" | grep -o '"service_solves": *[0-9]*' | grep -o '[0-9]*$' || true)
# An absent counter IS the pass condition: zero-valued counters are
# omitted from the snapshot, and the replay check above already proved
# the daemon is alive and answering.
if [ "${resolves:-0}" != "0" ]; then
	echo "chaos smoke: restart answered with ${resolves:-?} new solves, want exactly 0" >&2
	exit 1
fi
kill -INT "$chaos_pid"
wait "$chaos_pid" || { echo "mixtimed (chaos restart) did not shut down cleanly" >&2; exit 1; }
chaos_pid=""
cleanup_chaos
trap - EXIT
echo "chaos ok: $shed shed, $retried retried, $panics panics contained, crash replay hit with 0 solves"

echo "== zero-alloc kernel gate (live) =="
# The steady-state matvec kernels must not touch the allocator: run
# them briefly with -benchmem and fail on any nonzero allocs/op. This
# is a live check against the working tree — benchdiff's -zeroalloc
# gate below covers only the recorded snapshot.
alloc_bad=$(go test -run '^$' -bench 'BenchmarkStep$|BenchmarkStepCollector$|BenchmarkStepBlock' \
	-benchtime 20x -benchmem ./internal/markov |
	awk '/^Benchmark/ { for (i = 3; i < NF; i++) if ($(i + 1) == "allocs/op" && $i + 0 > 0) print "  " $1 ": " $i " allocs/op" }')
if [ -n "$alloc_bad" ]; then
	echo "steady-state kernels allocate:" >&2
	echo "$alloc_bad" >&2
	exit 1
fi
echo "Step/StepBlock kernels: 0 allocs/op"

echo "== 1M-node streamed/mmap scale smoke =="
# The raw-speed loading pipeline end to end at scale: gensocial
# streams a 1M-node ringer graph straight to disk (no in-RAM edge
# list), mixtimed serves it memory-mapped, and a bounded distmix
# query must answer. The daemon's peak RSS is gated at 512 MiB —
# about 2x the measured ~250 MiB (walker state dominates; the 36 MB
# graph itself stays file-backed) — so a change that silently
# rematerializes the graph or the edge list in RAM fails loudly.
scale_dir=$(mktemp -d)
cleanup_scale() {
	if [ -n "${scale_pid:-}" ]; then
		kill "$scale_pid" 2>/dev/null || true
		wait "$scale_pid" 2>/dev/null || true
	fi
	rm -rf "$scale_dir"
}
trap cleanup_scale EXIT
go build -o "$scale_dir/gensocial" ./cmd/gensocial
go build -o "$scale_dir/mixtimed" ./cmd/mixtimed
mkdir "$scale_dir/graphs"
"$scale_dir/gensocial" -model ringer -n 1000000 -k 6 -p 1e-6 -seed 7 \
	-stream -o "$scale_dir/graphs/ringer1m.mixg"
"$scale_dir/mixtimed" -graphs "$scale_dir/graphs" -mmap \
	-addr 127.0.0.1:0 -addr-file "$scale_dir/addr" >"$scale_dir/daemon.log" 2>&1 &
scale_pid=$!
tries=0
while [ ! -s "$scale_dir/addr" ]; do
	tries=$((tries + 1))
	if [ "$tries" -gt 200 ]; then
		echo "mixtimed (mmap) never published its address" >&2
		cat "$scale_dir/daemon.log" >&2
		exit 1
	fi
	sleep 0.1
done
scale_addr=$(cat "$scale_dir/addr")
scale_json=$(curl -s -X POST "http://$scale_addr/v1/query" \
	-d '{"op":"distmix","graph":"ringer1m","params":{"seed":1,"sources":2,"eps":0.25,"max_walk":30,"dist_walks":2,"dist_rounds":30}}')
scale_tau=$(printf '%s' "$scale_json" | grep -o '"tau": *[0-9]*' | head -1 | grep -o '[0-9]*$')
if [ -z "${scale_tau:-}" ]; then
	echo "scale smoke: distmix on the mapped 1M-node graph returned no tau" >&2
	echo "$scale_json" >&2
	exit 1
fi
hwm_kb=$(grep VmHWM "/proc/$scale_pid/status" | grep -o '[0-9]*')
if [ "${hwm_kb:-0}" -gt 524288 ]; then
	echo "scale smoke: daemon peak RSS ${hwm_kb} kB exceeds the 512 MiB budget" >&2
	exit 1
fi
kill -INT "$scale_pid"
wait "$scale_pid" || { echo "mixtimed (mmap) did not shut down cleanly" >&2; exit 1; }
scale_pid=""
cleanup_scale
trap - EXIT
echo "1M nodes streamed, mapped, distmix tau=$scale_tau, peak RSS ${hwm_kb} kB (budget 524288)"

echo "== benchdiff =="
# Gate the two newest kernel benchmark snapshots against each other.
# Snapshots are ordered by version-sorted name (BENCH_PR3 < BENCH_PR4
# < BENCH_PR10), not mtime — a fresh checkout scrambles mtimes and
# would otherwise diff in the wrong direction. With fewer than two
# snapshots there is nothing to compare; run scripts/bench.sh to
# record one.
set -- $(ls BENCH_*.json 2>/dev/null | sort -V | tail -2)
if [ "$#" -ge 2 ]; then
	go run ./scripts -zeroalloc '^Benchmark(Step$|StepCollector$|StepBlock)' "$1" "$2"
else
	echo "fewer than two BENCH_*.json snapshots; skipping"
fi

echo "all checks passed"
