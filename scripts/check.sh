#!/bin/sh
# check.sh — the pre-merge gate: formatting, vet, package-doc
# presence, the full test suite under the race detector, and (when at
# least two BENCH_*.json snapshots exist) the kernel benchmark
# regression diff. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== package docs =="
# Every package must carry a doc comment: some non-test file whose
# `package` clause is immediately preceded by a comment line. Build
# tags don't false-positive — gofmt keeps a blank line between
# //go:build and the package clause.
missing=""
for dir in $(go list -f '{{.Dir}}' ./...); do
	ok=0
	for f in "$dir"/*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		if awk '/^package /{ if (prev ~ /^\/\// || prev ~ /\*\/[[:space:]]*$/) found=1; exit } { prev=$0 } END{ exit !found }' "$f"; then
			ok=1
			break
		fi
	done
	if [ "$ok" -ne 1 ]; then
		missing="$missing $dir"
	fi
done
if [ -n "$missing" ]; then
	echo "packages missing a doc comment:" >&2
	for dir in $missing; do
		echo "  $dir" >&2
	done
	exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "== fault-tolerance race gate =="
# The retry/checkpoint machinery is the most concurrency-sensitive
# code in the repo; re-run it uncached so a cached pass can never mask
# a freshly introduced race.
go test -race -count=1 ./internal/runner ./internal/telemetry ./internal/checkpoint

echo "== graphio fuzz corpus =="
# Execute the seed corpus of every fuzz target (no fuzzing engine —
# deterministic and fast). Longer exploration:
#   go test -fuzz=FuzzReadMIXG -fuzztime=30s ./internal/graphio
go test -run='^Fuzz' ./internal/graphio

echo "== benchdiff =="
# Gate the two newest kernel benchmark snapshots against each other.
# With fewer than two snapshots there is nothing to compare; run
# scripts/bench.sh to record one.
set -- $(ls -t BENCH_*.json 2>/dev/null || true)
if [ "$#" -ge 2 ]; then
	go run ./scripts "$2" "$1"
else
	echo "fewer than two BENCH_*.json snapshots; skipping"
fi

echo "all checks passed"
