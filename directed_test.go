package mixtime_test

import (
	"math"
	"testing"

	"mixtime"
)

func TestFacadeDirectedPipeline(t *testing.T) {
	// A directed crawl: a strongly connected core plus a dangling tail.
	b := mixtime.NewDiBuilder(0)
	// Chord offsets +1 and +2 give coprime cycle lengths (10 and 9),
	// so the directed walk is aperiodic.
	for i := 0; i < 10; i++ {
		b.AddArc(mixtime.NodeID(i), mixtime.NodeID((i+1)%10))
		b.AddArc(mixtime.NodeID(i), mixtime.NodeID((i+2)%10))
	}
	b.AddArc(3, 20) // one-way tail: not in the SCC
	dg := b.Build()

	scc, orig := mixtime.LargestSCC(dg)
	if scc.NumNodes() != 10 {
		t.Fatalf("SCC has %d nodes (map %v)", scc.NumNodes(), orig)
	}
	chain, err := mixtime.NewDirectedChain(scc, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	tr := chain.TraceFrom(0, 400)
	if tr.TV[399] > 1e-6 {
		t.Fatalf("directed walk TV after 400 steps: %v", tr.TV[399])
	}

	// The paper's preprocessing path: symmetrize, then measure.
	ug := mixtime.Symmetrize(dg)
	m, err := mixtime.Measure(ug, mixtime.Options{Sources: 10, MaxWalk: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mu() <= 0 || m.Mu() >= 1 {
		t.Fatalf("symmetrized µ = %v", m.Mu())
	}
}

func TestFacadeTrustChain(t *testing.T) {
	g := mixtime.RelaxedCaveman(30, 6, 0.05, 3)
	lcc, _ := mixtime.LargestComponent(g)

	plain, err := mixtime.WeightedSLEM(lcc, mixtime.UniformTrust(lcc), mixtime.SpectralOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	jac, err := mixtime.WeightedSLEM(lcc, mixtime.JaccardTrust(lcc), mixtime.SpectralOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if jac.Mu <= plain.Mu {
		t.Fatalf("similarity trust µ=%v not slower than plain µ=%v", jac.Mu, plain.Mu)
	}

	c, err := mixtime.NewTrustChain(lcc, mixtime.InverseDegreeTrust(lcc), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pi := c.Stationary()
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Fatalf("trust π sums to %v", sum)
	}
	est, err := c.SLEM(mixtime.SpectralOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mu <= 0 || est.Mu >= 1 {
		t.Fatalf("trust µ = %v", est.Mu)
	}
}
