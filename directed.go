package mixtime

import (
	"mixtime/internal/digraph"
	"mixtime/internal/spectral"
	"mixtime/internal/trust"
)

// --- Directed graphs ------------------------------------------------

// DiGraph is a simple directed graph. The SNAP crawls behind several
// Table-1 datasets are directed; the paper symmetrizes them before
// measuring (Symmetrize), and the directed walk itself can be
// measured via NewDirectedChain.
type DiGraph = digraph.DiGraph

// Arc is a directed edge.
type Arc = digraph.Arc

// DiBuilder accumulates arcs and builds a DiGraph.
type DiBuilder = digraph.Builder

// NewDiBuilder returns a directed-graph builder.
func NewDiBuilder(sizeHint int) *DiBuilder { return digraph.NewBuilder(sizeHint) }

// Symmetrize converts a digraph to the undirected graph the paper
// measures (every arc becomes an edge; reciprocal pairs merge).
func Symmetrize(g *DiGraph) *Graph { return digraph.Symmetrize(g) }

// LargestSCC extracts the largest strongly connected component, the
// directed analogue of LargestComponent.
func LargestSCC(g *DiGraph) (*DiGraph, []NodeID) { return digraph.LargestSCC(g) }

// DirectedChain is the random walk on a strongly connected digraph.
// Its stationary distribution has no closed form and is computed
// numerically at construction.
type DirectedChain = digraph.Chain

// NewDirectedChain builds the directed walk (tol bounds the L1 error
// of the computed stationary distribution; ≤ 0 defaults to 1e-12).
func NewDirectedChain(g *DiGraph, tol float64, opts ...digraph.ChainOption) (*DirectedChain, error) {
	return digraph.NewChain(g, tol, opts...)
}

// LazyDirected makes the directed chain lazy ((I+P)/2), curing
// periodicity.
func LazyDirected() digraph.ChainOption { return digraph.LazyChain() }

// --- Trust-modulated walks ------------------------------------------

// TrustWeights are symmetric positive edge weights, CSR-aligned with
// a Graph (one entry per adjacency slot in Neighbors order).
type TrustWeights = trust.Weights

// TrustChain is a trust-modulated random walk: weighted transitions
// plus per-step hesitation — the paper's future-work model for
// incorporating trust into Sybil defenses.
type TrustChain = trust.Chain

// UniformTrust weights every edge 1 (the plain walk).
func UniformTrust(g *Graph) TrustWeights { return trust.UniformWeights(g) }

// JaccardTrust weights each edge by the smoothed Jaccard similarity
// of its endpoints' neighborhoods — strong ties carry more trust.
func JaccardTrust(g *Graph) TrustWeights { return trust.JaccardWeights(g) }

// InverseDegreeTrust penalizes high-degree endpoints.
func InverseDegreeTrust(g *Graph) TrustWeights { return trust.InverseDegreeWeights(g) }

// NewTrustChain builds a trust-modulated chain with the given weights
// and hesitation probability alpha ∈ [0, 1).
func NewTrustChain(g *Graph, w TrustWeights, alpha float64) (*TrustChain, error) {
	return trust.NewChain(g, w, alpha)
}

// WeightedSLEM estimates µ for a weighted walk directly from a graph
// and CSR-aligned weights.
func WeightedSLEM(g *Graph, w TrustWeights, opt SpectralOptions) (*SpectralEstimate, error) {
	op, err := spectral.NewWeightedOperator(g, w)
	if err != nil {
		return nil, err
	}
	return spectral.SLEMOf(op, opt)
}
