// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark
// runs the corresponding experiment driver at a benchmark-friendly
// scale and reports a few headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness (EXPERIMENTS.md records a full
// annotated run at larger scale via cmd/paperfigs).
package mixtime_test

import (
	"math/rand/v2"
	"testing"

	"mixtime"
	"mixtime/internal/experiments"
	"mixtime/internal/markov"
	"mixtime/internal/spectral"
)

// benchCfg keeps the per-iteration cost of the heavier drivers around
// a second on one core.
var benchCfg = experiments.Config{
	Scale:   0.001,
	Seed:    1,
	Sources: 50,
	MaxWalk: 300,
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Name == "livejournal-A" {
					b.ReportMetric(r.Mu, "µ(livejournal-A)")
				}
				if r.Name == "wiki-vote" {
					b.ReportMetric(r.Mu, "µ(wiki-vote)")
				}
			}
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Headline: walk length the bound demands for ε=0.1 on the
			// slowest small dataset.
			worst := 0.0
			for _, c := range curves {
				if t := mixtime.MixingLowerBound(c.Mu, 0.1); t > worst {
					worst = t
				}
			}
			b.ReportMetric(worst, "maxT(ε=0.1)")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Headline: fraction of sources within ε=0.1 at w=40 on
			// physics-1 (the paper: far below 1).
			for _, r := range rows {
				if r.Dataset == "physics-1" && r.W == 40 {
					within := 0
					for _, d := range r.Distances {
						if d < 0.1 {
							within++
						}
					}
					b.ReportMetric(float64(within)/float64(len(r.Distances)), "frac<0.1@w40")
				}
			}
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	cfg := benchCfg
	cfg.Scale = 0.002 // trim levels need fringe headroom
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[4].Nodes)/float64(rows[0].Nodes), "size(DBLP5/DBLP1)")
			b.ReportMetric(rows[0].Mu-rows[4].Mu, "Δµ(trim1→5)")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	cfg := experiments.Fig8Config{Config: benchCfg, Nodes: 500, R0: 3,
		Walks: []int{1, 2, 4, 8, 16, 24}}
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range curves {
				if c.Dataset == "facebook-A" {
					b.ReportMetric(c.Accept[len(c.Accept)-1], "fb-accept@w24")
				}
				if c.Dataset == "physics-1" {
					b.ReportMetric(c.Accept[len(c.Accept)-1], "phys1-accept@w24")
				}
			}
		}
	}
}

func BenchmarkSybilAttack(b *testing.B) {
	cfg := experiments.SybilAttackConfig{Config: benchCfg, Nodes: 400,
		SybilNodes: 100, AttackEdges: 8, R0: 2, Walks: []int{2, 8, 16}}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SybilAttack(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].EscapesPerEdge, "escapes/g@w16")
		}
	}
}

func BenchmarkConductance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Conductance(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhanauTails(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Whanau(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Dataset == "physics-1" && r.W == 80 {
					b.ReportMetric(r.MeanEdgeTV, "edgeTV(physics-1@w80)")
				}
			}
		}
	}
}

func BenchmarkDetection(b *testing.B) {
	cfg := experiments.DetectionConfig{Config: benchCfg, Nodes: 400,
		SybilNodes: 80, AttackEdges: 4, Walks: []int{6, 24}}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Detection(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Dataset == "physics-1" && r.W == 24 {
					b.ReportMetric(r.Gap, "gap(physics-1@w24)")
				}
				if r.Dataset == "facebook-A" && r.W == 24 {
					b.ReportMetric(r.Gap, "gap(facebook-A@w24)")
				}
			}
		}
	}
}

func BenchmarkTrustModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TrustModels(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Dataset == "physics-1" {
					b.ReportMetric(r.MuJaccard-r.MuUniform, "Δµ(jaccard)")
				}
			}
		}
	}
}

func BenchmarkDefenseComparison(b *testing.B) {
	cfg := experiments.DefenseComparisonConfig{Config: benchCfg, Nodes: 300,
		SybilNodes: 60, AttackEdges: 2, W: 10, Datasets: []string{"facebook-A"}}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DefenseComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Defense == "ppr" {
					b.ReportMetric(r.AUC, "AUC(ppr)")
				}
				if r.Defense == "community" {
					b.ReportMetric(r.AUC, "AUC(community)")
				}
			}
		}
	}
}

func BenchmarkWhanauLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WhanauLookup(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Dataset == "physics-1" && r.W == 64 {
					b.ReportMetric(r.Success, "success(physics-1@w64)")
				}
				if r.Dataset == "physics-1" && r.W == 8 {
					b.ReportMetric(r.Success, "success(physics-1@w8)")
				}
			}
		}
	}
}

// --- Ablations (design choices from DESIGN.md §7) -------------------

func ablationGraph() *mixtime.Graph {
	d, err := mixtime.DatasetByName("physics-2")
	if err != nil {
		panic(err)
	}
	return d.Generate(0.1, 1)
}

func BenchmarkSLEMPower(b *testing.B) {
	g := ablationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := mixtime.SLEMPower(g, mixtime.SpectralOptions{Tol: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(est.Iterations), "matvecs")
		}
	}
}

func BenchmarkSLEMLanczos(b *testing.B) {
	g := ablationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := spectral.SLEMLanczos(g, spectral.Options{Tol: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(est.Iterations), "matvecs")
		}
	}
}

func BenchmarkPropagationExact(b *testing.B) {
	g := ablationGraph()
	c, err := mixtime.NewChain(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TraceFrom(0, 100)
	}
}

func BenchmarkPropagationMC(b *testing.B) {
	g := ablationGraph()
	c, err := mixtime.NewChain(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MCTrace(0, 100, 10_000, rng)
	}
}

func BenchmarkLazyVsPlainChain(b *testing.B) {
	g := ablationGraph()
	for _, mode := range []struct {
		name string
		opts []markov.Option
	}{{"plain", nil}, {"lazy", []markov.Option{markov.Lazy()}}} {
		b.Run(mode.name, func(b *testing.B) {
			c, err := markov.New(g, mode.opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				c.TraceFrom(0, 50)
			}
		})
	}
}

func BenchmarkRoutePermutations(b *testing.B) {
	g := ablationGraph()
	for _, lazy := range []bool{false, true} {
		name := "materialized"
		if lazy {
			name = "prf-lazy"
		}
		b.Run(name, func(b *testing.B) {
			p, err := mixtime.NewSybilLimit(g, mixtime.SybilLimitConfig{
				W: 10, R: 40, Seed: 1, Lazy: lazy})
			if err != nil {
				b.Fatal(err)
			}
			suspects := mixtime.AllHonest(g, 0)[:500]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Verify(0, suspects)
			}
		})
	}
}
