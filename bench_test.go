// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. The experiment
// benchmarks iterate the runner registry, so a driver registered in
// internal/experiments is benchmarked with no further wiring:
//
//	go test -bench=Experiments/F3 -benchmem
//
// doubles as the reproduction harness (EXPERIMENTS.md records a full
// annotated run at larger scale via cmd/paperfigs).
package mixtime_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	"mixtime"
	_ "mixtime/internal/experiments" // register the paper's artifacts
	"mixtime/internal/markov"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/telemetry"
)

// benchCfg keeps the per-iteration cost of the heavier drivers around
// a second on one core.
var benchCfg = runner.Config{
	Scale:   0.001,
	Seed:    1,
	Sources: 50,
	MaxWalk: 300,
}

// BenchmarkExperiments runs every registered artifact (T1, F1–F8,
// X1–X7) as a sub-benchmark keyed by its DESIGN.md §5 ID.
func BenchmarkExperiments(b *testing.B) {
	ctx := context.Background()
	for _, def := range runner.Default().Defs() {
		b.Run(def.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := def.Run(ctx, benchCfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (design choices from DESIGN.md §7) -------------------

func ablationGraph() *mixtime.Graph {
	d, err := mixtime.DatasetByName("physics-2")
	if err != nil {
		panic(err)
	}
	return d.Generate(0.1, 1)
}

func BenchmarkSLEMPower(b *testing.B) {
	g := ablationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := mixtime.SLEMPower(g, mixtime.SpectralOptions{Tol: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(est.Iterations), "matvecs")
		}
	}
}

func BenchmarkSLEMLanczos(b *testing.B) {
	g := ablationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := spectral.SLEMLanczos(g, spectral.Options{Tol: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(est.Iterations), "matvecs")
		}
	}
}

// largeAblationGraph is the facebook-A substitute at a scale whose
// adjacency (~2M entries) is well past the parallel matvec gate —
// the regime the sharded kernels exist for.
func largeAblationGraph() *mixtime.Graph {
	d, err := mixtime.DatasetByName("facebook-A")
	if err != nil {
		panic(err)
	}
	return d.Generate(0.05, 1)
}

// benchStep runs the single-distribution CSR kernel with an optional
// telemetry collector attached to the chain.
func benchStep(b *testing.B, col *telemetry.Collector) {
	g := ablationGraph()
	var opts []markov.Option
	if col != nil {
		opts = append(opts, markov.WithCollector(col))
	}
	c, err := markov.New(g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	p := c.Delta(0)
	q := make([]float64, n)
	scratch := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(q, p, scratch)
		p, q = q, p
	}
}

// BenchmarkStep is the uninstrumented single-distribution kernel
// baseline. BenchmarkStepCollector is the identical kernel with a
// live telemetry collector; DESIGN.md §8's overhead contract says the
// pair must stay within noise of each other, because counters are
// bumped once per CSR pass, never per edge. bench.sh snapshots both,
// so benchdiff flags a drift in either.
func BenchmarkStep(b *testing.B)          { benchStep(b, nil) }
func BenchmarkStepCollector(b *testing.B) { benchStep(b, telemetry.New()) }

// BenchmarkStepBlock measures the SpMV→SpMM transformation: one
// blocked step serves B source distributions per CSR pass, so the
// per-neighbor index loads are amortized across the block. The
// ns/source metric is the per-source cost; B=1 is the sequential
// baseline it must beat.
func BenchmarkStepBlock(b *testing.B) {
	g := ablationGraph()
	c, err := markov.New(g)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	for _, width := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("B=%d", width), func(b *testing.B) {
			p := make([]float64, n*width)
			q := make([]float64, n*width)
			scratch := make([]float64, n*width)
			for j := 0; j < width; j++ {
				p[j*width+j] = 1 // source j starts at vertex j
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.StepBlock(q, p, width, scratch)
				p, q = q, p
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(width),
				"ns/source")
		})
	}
}

// BenchmarkTraceSampleBlocked measures the full blocked trace sampler
// the experiment drivers run on, per-source, against the per-source
// sequential path (B=1).
func BenchmarkTraceSampleBlocked(b *testing.B) {
	g := ablationGraph()
	c, err := markov.New(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	sources := markov.SampleSources(g, 16, rng)
	for _, width := range []int{1, 8} {
		b.Run(fmt.Sprintf("B=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.TraceSampleBlocked(sources, 50, width)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(sources)),
				"ns/source")
		})
	}
}

// BenchmarkApplyParallel measures the row-sharded symmetric matvec on
// a graph large enough to clear the parallel gate.
func BenchmarkApplyParallel(b *testing.B) {
	g := largeAblationGraph()
	op, err := spectral.NewOperator(g)
	if err != nil {
		b.Fatal(err)
	}
	n := op.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	dst := make([]float64, n)
	scratch := make([]float64, n)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op.ApplyParallel(dst, x, scratch, workers)
			}
		})
	}
}

func BenchmarkPropagationExact(b *testing.B) {
	g := ablationGraph()
	c, err := mixtime.NewChain(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TraceFrom(0, 100)
	}
}

func BenchmarkPropagationMC(b *testing.B) {
	g := ablationGraph()
	c, err := mixtime.NewChain(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MCTrace(0, 100, 10_000, rng)
	}
}

func BenchmarkLazyVsPlainChain(b *testing.B) {
	g := ablationGraph()
	for _, mode := range []struct {
		name string
		opts []markov.Option
	}{{"plain", nil}, {"lazy", []markov.Option{markov.Lazy()}}} {
		b.Run(mode.name, func(b *testing.B) {
			c, err := markov.New(g, mode.opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				c.TraceFrom(0, 50)
			}
		})
	}
}

func BenchmarkRoutePermutations(b *testing.B) {
	g := ablationGraph()
	for _, lazy := range []bool{false, true} {
		name := "materialized"
		if lazy {
			name = "prf-lazy"
		}
		b.Run(name, func(b *testing.B) {
			p, err := mixtime.NewSybilLimit(g, mixtime.SybilLimitConfig{
				W: 10, R: 40, Seed: 1, Lazy: lazy})
			if err != nil {
				b.Fatal(err)
			}
			suspects := mixtime.AllHonest(g, 0)[:500]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Verify(0, suspects)
			}
		})
	}
}
