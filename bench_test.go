// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the coarse end-to-end ablations from DESIGN.md §7.
// The experiment benchmarks iterate the runner registry, so a driver
// registered in internal/experiments is benchmarked with no further
// wiring:
//
//	go test -bench=Experiments/F3 -benchmem
//
// doubles as the reproduction harness (EXPERIMENTS.md records a full
// annotated run at larger scale via cmd/paperfigs).
//
// The fine-grained kernel benchmarks (Step, StepBlock, the
// eigensolvers, the distributed walker flood) live next to their
// kernels — internal/markov, internal/spectral, internal/distmix —
// so the bench.sh snapshot binaries link only their own dependencies
// and stay layout-stable as the rest of the repo grows.
package mixtime_test

import (
	"context"
	"math/rand/v2"
	"testing"

	"mixtime"
	_ "mixtime/internal/experiments" // register the paper's artifacts
	"mixtime/internal/markov"
	"mixtime/internal/runner"
)

// benchCfg keeps the per-iteration cost of the heavier drivers around
// a second on one core.
var benchCfg = runner.Config{
	Scale:   0.001,
	Seed:    1,
	Sources: 50,
	MaxWalk: 300,
}

// BenchmarkExperiments runs every registered artifact (T1, F1–F8,
// X1–X7, D1–D2) as a sub-benchmark keyed by its DESIGN.md §5 ID.
func BenchmarkExperiments(b *testing.B) {
	ctx := context.Background()
	for _, def := range runner.Default().Defs() {
		b.Run(def.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := def.Run(ctx, benchCfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (design choices from DESIGN.md §7) -------------------

func ablationGraph() *mixtime.Graph {
	d, err := mixtime.DatasetByName("physics-2")
	if err != nil {
		panic(err)
	}
	return d.Generate(0.1, 1)
}

func BenchmarkPropagationMC(b *testing.B) {
	g := ablationGraph()
	c, err := mixtime.NewChain(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MCTrace(0, 100, 10_000, rng)
	}
}

func BenchmarkLazyVsPlainChain(b *testing.B) {
	g := ablationGraph()
	for _, mode := range []struct {
		name string
		opts []markov.Option
	}{{"plain", nil}, {"lazy", []markov.Option{markov.Lazy()}}} {
		b.Run(mode.name, func(b *testing.B) {
			c, err := markov.New(g, mode.opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				c.TraceFrom(0, 50)
			}
		})
	}
}

func BenchmarkRoutePermutations(b *testing.B) {
	g := ablationGraph()
	for _, lazy := range []bool{false, true} {
		name := "materialized"
		if lazy {
			name = "prf-lazy"
		}
		b.Run(name, func(b *testing.B) {
			p, err := mixtime.NewSybilLimit(g, mixtime.SybilLimitConfig{
				W: 10, R: 40, Seed: 1, Lazy: lazy})
			if err != nil {
				b.Fatal(err)
			}
			suspects := mixtime.AllHonest(g, 0)[:500]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Verify(0, suspects)
			}
		})
	}
}
