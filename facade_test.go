package mixtime_test

import (
	"math"
	"path/filepath"
	"testing"

	"mixtime"
)

// TestFacadeSurfaceSweep exercises every remaining facade wrapper so
// the public API is known to be wired to the right internals.
func TestFacadeSurfaceSweep(t *testing.T) {
	// Generators.
	ws := mixtime.WattsStrogatz(120, 3, 0.1, 1)
	if ws.NumNodes() != 120 {
		t.Fatal("WattsStrogatz")
	}
	ff := mixtime.ForestFire(150, 0.3, 1)
	if ff.NumNodes() != 150 || !mixtime.IsConnected(ff) {
		t.Fatal("ForestFire")
	}
	kl := mixtime.Kleinberg(8, 2, 1)
	if kl.NumNodes() != 64 {
		t.Fatal("Kleinberg")
	}
	hk := mixtime.HolmeKim(150, 3, 0.5, 1)
	if hk.NumNodes() != 150 {
		t.Fatal("HolmeKim")
	}

	// Graph construction and IO.
	g, err := mixtime.FromEdges(4, []mixtime.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	core := mixtime.Coreness(g)
	if core[0] != 2 || core[3] != 2 {
		t.Fatalf("coreness %v", core)
	}
	path := filepath.Join(t.TempDir(), "g.mixg")
	if err := mixtime.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := mixtime.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("file round trip")
	}

	// Spectral wrappers.
	k12 := mixtime.BarabasiAlbert(120, 4, 2)
	est, err := mixtime.SLEM(k12, mixtime.SpectralOptions{Tol: 1e-8})
	if err != nil || est.Mu <= 0 {
		t.Fatalf("SLEM: %v %v", est, err)
	}
	pow, err := mixtime.SLEMPower(k12, mixtime.SpectralOptions{Tol: 1e-7})
	if err != nil || math.Abs(pow.Mu-est.Mu) > 1e-3 {
		t.Fatalf("SLEMPower %v vs %v (err %v)", pow.Mu, est.Mu, err)
	}
	prof, err := mixtime.SpectralProfile(k12, 3, mixtime.SpectralOptions{Tol: 1e-8})
	if err != nil || len(prof) != 3 {
		t.Fatalf("profile %v err %v", prof, err)
	}
	if math.Abs(prof[0]-est.Lambda2) > 1e-5 {
		t.Fatalf("profile[0]=%v vs λ2=%v", prof[0], est.Lambda2)
	}

	// Defense wrappers.
	guard, err := mixtime.SybilGuard(k12, 0, mixtime.AllHonest(k12, 0), mixtime.SybilGuardConfig{Seed: 1})
	if err != nil || guard.W != mixtime.SybilGuardWalkLength(120) {
		t.Fatalf("SybilGuard %v err %v", guard, err)
	}
	full, err := mixtime.SybilGuardFull(k12, 0, mixtime.AllHonest(k12, 0)[:30], mixtime.SybilGuardConfig{W: 25, Seed: 1})
	if err != nil || full.AcceptRate() <= 0 {
		t.Fatalf("SybilGuardFull %v err %v", full, err)
	}
	inf, err := mixtime.SybilInfer(k12, mixtime.SybilInferConfig{Samples: 10, Burn: 5, Seed: 1})
	if err != nil || len(inf.HonestProb) != 120 {
		t.Fatalf("SybilInfer err %v", err)
	}
	sr, err := mixtime.SybilRank(k12, []mixtime.NodeID{0}, 0)
	if err != nil || len(sr) != 120 {
		t.Fatalf("SybilRank err %v", err)
	}

	// Metrics wrappers.
	deg := mixtime.Degrees(k12)
	if deg.Min < 1 || deg.Max < deg.Min {
		t.Fatalf("Degrees %+v", deg)
	}
	if c := mixtime.AverageClustering(k12); c < 0 || c > 1 {
		t.Fatalf("clustering %v", c)
	}
	if c := mixtime.GlobalClustering(k12); c < 0 || c > 1 {
		t.Fatalf("transitivity %v", c)
	}
	if a := mixtime.Assortativity(k12); a < -1 || a > 1 {
		t.Fatalf("assortativity %v", a)
	}
	if p := mixtime.SampledPathLength(k12, 10, 1); p <= 0 {
		t.Fatalf("path length %v", p)
	}

	// Directed lazy option.
	b := mixtime.NewDiBuilder(0)
	for i := 0; i < 5; i++ {
		b.AddArc(mixtime.NodeID(i), mixtime.NodeID((i+1)%5))
	}
	dc, err := mixtime.NewDirectedChain(b.Build(), 1e-10, mixtime.LazyDirected())
	if err != nil {
		t.Fatal(err)
	}
	tr := dc.TraceFrom(0, 200)
	if tr.TV[199] > 1e-3 {
		t.Fatalf("lazy directed cycle TV %v", tr.TV[199])
	}
}
