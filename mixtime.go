package mixtime

import (
	"context"
	"io"
	"math/rand/v2"

	"mixtime/internal/core"
	"mixtime/internal/datasets"
	"mixtime/internal/gen"
	"mixtime/internal/graph"
	"mixtime/internal/graphio"
	"mixtime/internal/markov"
	"mixtime/internal/spectral"
	"mixtime/internal/sybil"
)

// Graph is a compact immutable simple undirected graph in CSR form.
type Graph = graph.Graph

// NodeID identifies a vertex of a Graph.
type NodeID = graph.NodeID

// Edge is an undirected edge.
type Edge = graph.Edge

// Builder accumulates (possibly directed, duplicated) edges and
// builds the symmetrized simple Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder with capacity for sizeHint edges.
func NewBuilder(sizeHint int) *Builder { return graph.NewBuilder(sizeHint) }

// FromEdges builds a graph with n nodes (0 infers the count) from an
// edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// LargestComponent extracts the largest connected component; the
// second value maps new IDs back to originals. The mixing time is
// only defined on connected graphs, so measure this.
func LargestComponent(g *Graph) (*Graph, []NodeID) { return graph.LargestComponent(g) }

// Trim iteratively removes nodes of degree < minDeg (the
// SybilGuard/SybilLimit preprocessing whose cost Figure 6 of the
// paper measures) and returns the result with an ID mapping.
func Trim(g *Graph, minDeg int) (*Graph, []NodeID) { return graph.Trim(g, minDeg) }

// BFSSample returns the subgraph induced by the first k nodes of a
// breadth-first search from start — the paper's procedure for cutting
// measurable samples out of million-node graphs.
func BFSSample(g *Graph, start NodeID, k int) (*Graph, []NodeID) {
	return graph.BFSSubgraph(g, start, k)
}

// IsConnected reports whether g is connected.
func IsConnected(g *Graph) bool { return graph.IsConnected(g) }

// IsBipartite reports whether g is bipartite (in which case the plain
// random walk is periodic and never mixes; Measure handles this by
// switching to the lazy walk).
func IsBipartite(g *Graph) bool { return graph.IsBipartite(g) }

// Coreness returns each node's core number (the deepest Trim level it
// survives), in O(m).
func Coreness(g *Graph) []int { return graph.Coreness(g) }

// LoadGraph reads a graph from an edge-list or binary file (".gz"
// transparently decompressed).
func LoadGraph(path string) (*Graph, error) { return graphio.LoadFile(path) }

// SaveGraph writes a graph; ".mixg"/".mixg.gz" selects the binary
// format, anything else edge-list text.
func SaveGraph(path string, g *Graph) error { return graphio.SaveFile(path, g) }

// ReadEdgeList parses an edge-list stream.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graphio.ReadEdgeList(r) }

// WriteEdgeList writes g as edge-list text.
func WriteEdgeList(w io.Writer, g *Graph) error { return graphio.WriteEdgeList(w, g) }

// EdgeStream is a replayable lex-ordered edge producer — the input of
// SaveGraphStreamed. See graphio.EdgeStream for the full contract.
type EdgeStream = graphio.EdgeStream

// MappedGraph is a graph served from a memory-mapped MIXG snapshot;
// Close unmaps it. See graphio.MappedGraph for lifecycle rules.
type MappedGraph = graphio.MappedGraph

// LoadGraphMapped opens a graph with its adjacency memory-mapped from
// an uncompressed MIXG v2 snapshot (other formats load heap-backed).
func LoadGraphMapped(path string) (*MappedGraph, error) { return graphio.OpenMIXGMapped(path) }

// SaveGraphStreamed writes an n-node MIXG v2 snapshot from an edge
// stream without materializing the edge list or adjacency in RAM.
func SaveGraphStreamed(path string, n uint64, stream EdgeStream) error {
	return graphio.WriteMIXGStreamed(path, n, stream)
}

// --- Generators -----------------------------------------------------

// BarabasiAlbert generates a preferential-attachment graph with n
// nodes and k edges per new node — the standard model of fast-mixing
// online social graphs.
func BarabasiAlbert(n, k int, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, k, rngFor(seed))
}

// ErdosRenyi generates G(n, p).
func ErdosRenyi(n int, p float64, seed uint64) *Graph {
	return gen.ErdosRenyi(n, p, rngFor(seed))
}

// WattsStrogatz generates the small-world model (ring lattice with k
// neighbours per side, rewiring probability beta).
func WattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	return gen.WattsStrogatz(n, k, beta, rngFor(seed))
}

// RingERStream streams a "ringer" small world (ring lattice of k
// nearest neighbours plus ER shortcuts with probability p) as a
// replayable lex-ordered edge stream. Feed it to SaveGraphStreamed to
// generate graphs far larger than RAM; see gen.RingER.
func RingERStream(n uint64, k int, p float64, seed uint64) EdgeStream {
	return gen.RingER(n, k, p, seed)
}

// RelaxedCaveman generates clustered clique chains — the model of
// slow-mixing trust graphs (co-authorship networks).
func RelaxedCaveman(numCliques, cliqueSize int, rewire float64, seed uint64) *Graph {
	return gen.RelaxedCaveman(numCliques, cliqueSize, rewire, rngFor(seed))
}

// PlantedPartition generates the stochastic block model with k
// communities of the given size.
func PlantedPartition(k, size int, pIn, pOut float64, seed uint64) *Graph {
	return gen.PlantedPartition(k, size, pIn, pOut, rngFor(seed))
}

// ForestFire generates the forest-fire model of Leskovec et al. with
// burn probability p — heavy-tailed, densifying, community-rich.
func ForestFire(n int, p float64, seed uint64) *Graph {
	return gen.ForestFire(n, p, rngFor(seed))
}

// Kleinberg generates Kleinberg's navigable small-world on a
// side×side torus with long-range exponent r (r = 2 is navigable).
func Kleinberg(side int, r float64, seed uint64) *Graph {
	return gen.Kleinberg(side, r, rngFor(seed))
}

// HolmeKim generates preferential attachment with triad formation
// probability pt — BA's heavy tail plus tunable clustering.
func HolmeKim(n, k int, pt float64, seed uint64) *Graph {
	return gen.HolmeKim(n, k, pt, rngFor(seed))
}

func rngFor(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x6d69785f74696d65)) }

// --- Datasets -------------------------------------------------------

// Dataset pairs a paper dataset's Table-1 metadata with its synthetic
// substitute generator.
type Dataset = datasets.Dataset

// Datasets returns the fifteen Table-1 dataset substitutes.
func Datasets() []Dataset { return datasets.All() }

// DatasetByName looks up a Table-1 dataset by label (e.g.
// "physics-1", "facebook-A").
func DatasetByName(name string) (Dataset, error) { return datasets.ByName(name) }

// --- Measurement ----------------------------------------------------

// Options configures Measure.
type Options = core.Options

// Measurement is the result of measuring a graph's mixing time both
// ways (spectral bound and direct sampling).
type Measurement = core.Measurement

// Measure runs the paper's methodology on g: largest-component
// extraction, SLEM estimation, and sampled per-source distance
// traces.
func Measure(g *Graph, opt Options) (*Measurement, error) { return core.Measure(g, opt) }

// MeasureContext is Measure with cancellation: the SLEM iteration and
// every trace propagation check ctx, so a cancelled or expired
// context aborts promptly with an error wrapping ctx.Err().
func MeasureContext(ctx context.Context, g *Graph, opt Options) (*Measurement, error) {
	return core.MeasureContext(ctx, g, opt)
}

// DefaultOptions returns the canonical measurement options, including
// the conventional seed. A zero-valued Options is also usable: every
// field but Seed is defaulted, and Seed 0 is a valid seed.
func DefaultOptions() Options { return core.DefaultOptions() }

// Chain is the random walk on a graph as a Markov chain.
type Chain = markov.Chain

// Trace is a per-source record of total-variation distance after
// every walk length.
type Trace = markov.Trace

// NewChain constructs the random-walk chain for g; pass LazyWalk to
// get the (I+P)/2 walk that converges on bipartite graphs.
func NewChain(g *Graph, opts ...markov.Option) (*Chain, error) { return markov.New(g, opts...) }

// LazyWalk selects the lazy chain (I+P)/2 in NewChain.
func LazyWalk() markov.Option { return markov.Lazy() }

// TVDistance returns the total variation distance ½‖p−q‖₁.
func TVDistance(p, q []float64) float64 { return markov.TVDistance(p, q) }

// MixingTime applies the paper's Definition 1 to traces: the maximum
// over sources of the first walk length within eps.
func MixingTime(traces []*Trace, eps float64) (int, bool) { return markov.MixingTime(traces, eps) }

// --- Spectral -------------------------------------------------------

// SpectralEstimate is the result of a SLEM computation.
type SpectralEstimate = spectral.Estimate

// SpectralOptions configures SLEM estimation.
type SpectralOptions = spectral.Options

// SLEM estimates the second largest eigenvalue modulus of the
// transition matrix (Lanczos with power-iteration fallback).
func SLEM(g *Graph, opt SpectralOptions) (*SpectralEstimate, error) { return spectral.SLEM(g, opt) }

// SLEMContext is SLEM with cancellation threaded into the Lanczos and
// power iterations.
func SLEMContext(ctx context.Context, g *Graph, opt SpectralOptions) (*SpectralEstimate, error) {
	return spectral.SLEMContext(ctx, g, opt)
}

// SLEMPower estimates µ by deflated power iteration only.
func SLEMPower(g *Graph, opt SpectralOptions) (*SpectralEstimate, error) {
	return spectral.SLEMPower(g, opt)
}

// SLEMPowerContext is SLEMPower with cancellation checked every
// matrix-vector product.
func SLEMPowerContext(ctx context.Context, g *Graph, opt SpectralOptions) (*SpectralEstimate, error) {
	return spectral.SLEMPowerContext(ctx, g, opt)
}

// SpectralProfile returns the k largest eigenvalues of P below
// λ₁ = 1 (λ₂ ≥ … ≥ λ_{k+1}). The count near 1 is the spectral
// community count.
func SpectralProfile(g *Graph, k int, opt SpectralOptions) ([]float64, error) {
	return spectral.Profile(g, k, opt)
}

// MixingLowerBound is Sinclair's lower bound µ/(2(1−µ))·ln(1/2ε) on
// the mixing time (Theorem 2 of the paper).
func MixingLowerBound(mu, eps float64) float64 { return spectral.MixingLowerBound(mu, eps) }

// MixingUpperBound is Sinclair's upper bound (ln n + ln 1/ε)/(1−µ).
func MixingUpperBound(mu, eps float64, n int) float64 {
	return spectral.MixingUpperBound(mu, eps, n)
}

// FastMixingWalkLength returns ⌈ln n⌉, the walk length the
// Sybil-defense literature assumes suffices.
func FastMixingWalkLength(n int) int { return spectral.FastMixingWalkLength(n) }

// --- Sybil defenses -------------------------------------------------

// SybilLimitConfig parameterizes a SybilLimit run.
type SybilLimitConfig = sybil.Config

// SybilLimitProtocol is a configured SybilLimit deployment.
type SybilLimitProtocol = sybil.Protocol

// SybilLimitResult reports one verifier's admission decisions.
type SybilLimitResult = sybil.Result

// NewSybilLimit validates a SybilLimit configuration against g.
func NewSybilLimit(g *Graph, cfg SybilLimitConfig) (*SybilLimitProtocol, error) {
	return sybil.NewProtocol(g, cfg)
}

// AllHonest returns every node except the verifier, as a suspect set.
func AllHonest(g *Graph, verifier NodeID) []NodeID { return sybil.AllHonest(g, verifier) }

// SybilAttack wires a sybil region onto an honest region with g
// attack edges.
type SybilAttack = sybil.Attack

// NewSybilAttack builds an attack scenario.
func NewSybilAttack(honest, sybilRegion *Graph, attackEdges int, seed uint64) *SybilAttack {
	return sybil.NewAttack(honest, sybilRegion, attackEdges, rngFor(seed))
}

// RunSybilAttack executes SybilLimit under attack from an honest
// verifier.
func RunSybilAttack(a *SybilAttack, verifier NodeID, cfg SybilLimitConfig) (*sybil.AttackOutcome, error) {
	return sybil.RunAttack(a, verifier, cfg)
}
