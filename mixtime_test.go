package mixtime_test

import (
	"bytes"
	"math"
	"testing"

	"mixtime"
)

func TestFacadeEndToEnd(t *testing.T) {
	g := mixtime.BarabasiAlbert(500, 4, 1)
	if !mixtime.IsConnected(g) {
		t.Fatal("BA graph disconnected")
	}
	m, err := mixtime.Measure(g, mixtime.Options{Sources: 40, MaxWalk: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mu() <= 0 || m.Mu() >= 1 {
		t.Fatalf("µ = %v", m.Mu())
	}
	tm, ok := m.SampledMixingTime(0.05)
	if !ok {
		t.Fatalf("did not mix to 0.05 in 100 steps (µ=%v)", m.Mu())
	}
	if lb := mixtime.MixingLowerBound(m.Mu(), 0.05); float64(tm) < lb-1 {
		t.Fatalf("measured %d below lower bound %v", tm, lb)
	}
	if ub := mixtime.MixingUpperBound(m.Mu(), 0.05, g.NumNodes()); float64(tm) > ub+1 {
		t.Fatalf("measured %d above upper bound %v", tm, ub)
	}
}

func TestFacadeBuilderAndIO(t *testing.T) {
	b := mixtime.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()
	var buf bytes.Buffer
	if err := mixtime.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := mixtime.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 3 {
		t.Fatalf("round trip m = %d", back.NumEdges())
	}
}

func TestFacadeTransforms(t *testing.T) {
	g := mixtime.ErdosRenyi(300, 0.02, 2)
	lcc, _ := mixtime.LargestComponent(g)
	if !mixtime.IsConnected(lcc) {
		t.Fatal("LCC disconnected")
	}
	sample, _ := mixtime.BFSSample(lcc, 0, 50)
	if sample.NumNodes() != 50 {
		t.Fatalf("sample n = %d", sample.NumNodes())
	}
	core, _ := mixtime.Trim(lcc, 2)
	if core.NumNodes() > 0 && core.MinDegree() < 2 {
		t.Fatal("trim violated min degree")
	}
}

func TestFacadeDatasets(t *testing.T) {
	if len(mixtime.Datasets()) != 15 {
		t.Fatal("dataset registry incomplete")
	}
	d, err := mixtime.DatasetByName("wiki-vote")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Generate(0.05, 1)
	if g.NumNodes() < 100 {
		t.Fatalf("substitute n = %d", g.NumNodes())
	}
}

func TestFacadeSybilLimit(t *testing.T) {
	g := mixtime.BarabasiAlbert(300, 5, 3)
	p, err := mixtime.NewSybilLimit(g, mixtime.SybilLimitConfig{W: 10, R0: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Verify(0, mixtime.AllHonest(g, 0))
	if res.AcceptRate() < 0.8 {
		t.Fatalf("accept rate %v", res.AcceptRate())
	}
	attack := mixtime.NewSybilAttack(g, mixtime.BarabasiAlbert(60, 3, 4), 4, 5)
	out, err := mixtime.RunSybilAttack(attack, 0, mixtime.SybilLimitConfig{W: 10, R0: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.SybilTotal != 60 {
		t.Fatalf("sybil total %d", out.SybilTotal)
	}
}

func TestFacadeChainAndLazy(t *testing.T) {
	// Even ring is bipartite: the plain chain is periodic, the lazy
	// one converges.
	b := mixtime.NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.AddEdge(mixtime.NodeID(i), mixtime.NodeID((i+1)%8))
	}
	g := b.Build()
	if !mixtime.IsBipartite(g) {
		t.Fatal("even ring not bipartite")
	}
	c, err := mixtime.NewChain(g, mixtime.LazyWalk())
	if err != nil {
		t.Fatal(err)
	}
	tr := c.TraceFrom(0, 300)
	if tr.DistanceAt(300) > 1e-3 {
		t.Fatalf("lazy walk TV %v", tr.DistanceAt(300))
	}
	tm, ok := mixtime.MixingTime([]*mixtime.Trace{tr}, 0.01)
	if !ok || tm < 1 {
		t.Fatalf("MixingTime %d %v", tm, ok)
	}
	if d := mixtime.TVDistance([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Fatalf("TVDistance %v", d)
	}
	if mixtime.FastMixingWalkLength(1000) != int(math.Ceil(math.Log(1000))) {
		t.Fatal("yardstick")
	}
}
