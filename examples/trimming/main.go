// Trimming study (the paper's Figure 6): iteratively trim low-degree
// nodes from the DBLP substitute — the preprocessing SybilGuard and
// SybilLimit apply — and watch the mixing time improve while the
// graph shrinks. The paper's point: the speedup is bought by denying
// service to the trimmed users (DBLP loses ~76% of its nodes by trim
// level 5).
package main

import (
	"fmt"
	"log"

	"mixtime"
)

func main() {
	d, err := mixtime.DatasetByName("dblp")
	if err != nil {
		log.Fatal(err)
	}
	full := d.Generate(0.004, 1)
	fmt.Printf("DBLP substitute: %d nodes, %d edges\n\n", full.NumNodes(), full.NumEdges())
	fmt.Printf("%-7s %8s %9s %9s %9s %8s %9s\n",
		"level", "nodes", "kept%", "edges", "µ", "T(0.1)", "avg")

	base := -1
	for level := 1; level <= 5; level++ {
		trimmed, _ := mixtime.Trim(full, level)
		lcc, _ := mixtime.LargestComponent(trimmed)
		m, err := mixtime.Measure(lcc, mixtime.Options{
			Sources: 100, MaxWalk: 1_000, Seed: 1, KeepWhole: true,
		})
		if err != nil {
			log.Fatalf("level %d: %v", level, err)
		}
		if base < 0 {
			base = lcc.NumNodes()
		}
		t, ok := m.SampledMixingTime(0.1)
		mark := ""
		if !ok {
			mark = "+"
		}
		fmt.Printf("DBLP %-2d %8d %8.1f%% %9d %9.5f %7d%-1s %9.1f\n",
			level, lcc.NumNodes(), 100*float64(lcc.NumNodes())/float64(base),
			lcc.NumEdges(), m.Mu(), t, mark, m.AverageMixingTime(0.1))
	}
	fmt.Println("\n→ each trim level mixes faster, but 'DBLP 5' serves a fraction of 'DBLP 1's users.")
}
