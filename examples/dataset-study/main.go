// Dataset study: measure every Table-1 dataset substitute at a small
// scale and reproduce the paper's central comparison — the mixing
// time each trust class actually needs versus the O(log n) the Sybil
// defense literature assumes.
package main

import (
	"fmt"
	"log"

	"mixtime"
)

func main() {
	const (
		scale   = 0.002
		eps     = 0.1
		sources = 100
		maxWalk = 800
	)
	fmt.Printf("%-14s %-12s %8s %9s %9s %7s %7s %7s\n",
		"dataset", "kind", "nodes", "edges", "µ", "T(0.1)", "avg", "log n")
	for _, d := range mixtime.Datasets() {
		g := d.Generate(scale, 1)
		m, err := mixtime.Measure(g, mixtime.Options{
			Sources: sources, MaxWalk: maxWalk, Seed: 1,
		})
		if err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		t, ok := m.SampledMixingTime(eps)
		mark := ""
		if !ok {
			mark = "+" // lower bound: some sources never reached ε
		}
		fmt.Printf("%-14s %-12s %8d %9d %9.5f %6d%-1s %7.1f %7d\n",
			d.Name, d.Kind, m.Graph.NumNodes(), m.Graph.NumEdges(),
			m.Mu(), t, mark, m.AverageMixingTime(eps), m.FastMixingYardstick())
	}
	fmt.Println("\nT(0.1): sampled worst-case walk length to variation distance 0.1")
	fmt.Println("avg:    average-case walk length (the paper argues designs should use this)")
	fmt.Println("→ trust graphs (physics, dblp) need walks far beyond log n; online graphs come closer.")
}
