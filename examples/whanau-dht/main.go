// Whānau DHT study: build Whānau routing tables on a fast-mixing and
// a slow-mixing social graph at increasing table-building walk
// lengths, and watch lookup success track the mixing time. The
// paper's §2 disputes Whānau's fast-mixing evidence; this example
// shows what is at stake for the DHT itself.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"mixtime"
)

func main() {
	fast := mixtime.BarabasiAlbert(1_000, 6, 1)
	slowRaw := mixtime.RelaxedCaveman(125, 8, 0.02, 1)
	slow, _ := mixtime.LargestComponent(slowRaw)

	for _, tc := range []struct {
		name string
		g    *mixtime.Graph
	}{{"fast (preferential attachment)", fast}, {"slow (clustered trust graph)", slow}} {
		m, err := mixtime.Measure(tc.g, mixtime.Options{SkipSampling: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d nodes, µ=%.5f, log n=%d\n",
			tc.name, tc.g.NumNodes(), m.Mu(), m.FastMixingYardstick())
		for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			dht, err := mixtime.BuildWhanau(tc.g, mixtime.WhanauConfig{W: w, Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			fmt.Printf("  w=%-4d lookup success %5.1f%%\n", w, 100*dht.SuccessRate(500, rng))
		}
		fmt.Println()
	}
	fmt.Println("→ on the slow graph, tables built with log-n walks miss much of the key space.")
}
