// Quickstart: build a graph, measure its mixing time both ways, and
// compare against the O(log n) walk length Sybil defenses assume.
package main

import (
	"fmt"
	"log"

	"mixtime"
)

func main() {
	// A 5,000-node preferential-attachment graph — the fast-mixing
	// end of the social-graph spectrum.
	g := mixtime.BarabasiAlbert(5_000, 5, 42)
	fmt.Printf("graph: %d nodes, %d edges, avg degree %.1f\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree())

	// Measure: largest component, SLEM µ, and distance traces from
	// 100 sampled start vertices.
	m, err := mixtime.Measure(g, mixtime.Options{Sources: 100, MaxWalk: 200, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("µ (second largest eigenvalue modulus): %.5f\n", m.Mu())
	fmt.Printf("assumed fast-mixing walk length (log n): %d\n", m.FastMixingYardstick())
	fmt.Println()

	for _, eps := range []float64{0.25, 0.1, 0.01} {
		t, ok := m.SampledMixingTime(eps)
		status := ""
		if !ok {
			status = "+"
		}
		fmt.Printf("ε=%-5.2g  sampled T(ε)=%3d%-1s  average=%5.1f  Sinclair bounds [%6.1f, %8.1f]\n",
			eps, t, status, m.AverageMixingTime(eps), m.LowerBound(eps), m.UpperBound(eps))
	}

	// Contrast with a trust graph: a relaxed caveman (clustered
	// cliques) of similar size mixes far more slowly.
	slow := mixtime.RelaxedCaveman(700, 7, 0.03, 42)
	ms, err := mixtime.Measure(slow, mixtime.Options{Sources: 100, MaxWalk: 2_000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	t, ok := ms.SampledMixingTime(0.1)
	fmt.Printf("\ntrust-graph contrast (%d nodes): µ=%.5f, sampled T(0.1)=%d (reached=%v) vs log n = %d\n",
		ms.Graph.NumNodes(), ms.Mu(), t, ok, ms.FastMixingYardstick())
	fmt.Println("→ the paper's finding: social graphs mix much more slowly than Sybil defenses assume.")
}
