// Sybil-defense example: run SybilLimit on a fast-mixing and a
// slow-mixing social graph, with and without an attacker, sweeping
// the random-route length. It demonstrates the paper's §5 trade-off:
// routes short enough to contain sybils deny service to honest nodes
// on slow-mixing graphs, while routes long enough to admit everyone
// leak tails into the sybil region.
package main

import (
	"fmt"
	"log"

	"mixtime"
)

func main() {
	fast := mixtime.BarabasiAlbert(1_500, 6, 7)
	slowRaw := mixtime.RelaxedCaveman(215, 7, 0.03, 7)
	slow, _ := mixtime.LargestComponent(slowRaw)

	for _, tc := range []struct {
		name string
		g    *mixtime.Graph
	}{{"fast (preferential attachment)", fast}, {"slow (clustered trust graph)", slow}} {
		m, err := mixtime.Measure(tc.g, mixtime.Options{SkipSampling: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d nodes, %d edges, µ=%.5f\n",
			tc.name, tc.g.NumNodes(), tc.g.NumEdges(), m.Mu())

		// No attacker: the admission rate isolates the utility cost of
		// slow mixing.
		fmt.Println("  no attacker:")
		for _, w := range []int{2, 5, 10, 20, 40} {
			p, err := mixtime.NewSybilLimit(tc.g, mixtime.SybilLimitConfig{W: w, R0: 3, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			res := p.Verify(0, mixtime.AllHonest(tc.g, 0))
			fmt.Printf("    w=%-3d accepted %5.1f%% of honest nodes (r=%d)\n",
				w, 100*res.AcceptRate(), res.R)
		}

		// Under attack: 300 sybils behind 5 attack edges.
		attack := mixtime.NewSybilAttack(tc.g, mixtime.BarabasiAlbert(300, 3, 8), 5, 9)
		fmt.Println("  under attack (300 sybils, g=5 attack edges):")
		for _, w := range []int{5, 20, 40} {
			out, err := mixtime.RunSybilAttack(attack, 0, mixtime.SybilLimitConfig{W: w, R0: 3, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    w=%-3d honest %5.1f%%  sybil %5.1f%%  escaped verifier tails %d/%d\n",
				w,
				100*float64(out.HonestAccepted)/float64(out.HonestTotal),
				100*float64(out.SybilAccepted)/float64(out.SybilTotal),
				out.EscapedTails, out.R)
		}
		fmt.Println()
	}
	fmt.Println("→ on the slow graph, no single w both admits honest nodes and starves the sybils.")
}
