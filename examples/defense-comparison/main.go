// Defense comparison: under one Sybil attack, rank every node by four
// different defenses — SybilLimit admission, SybilInfer posterior,
// personalized PageRank from the verifier, and sharing the verifier's
// Louvain community — and compare how well each separates honest
// nodes from sybils. This is the Viswanath et al. observation the
// paper's §2 reports, made runnable: the random-walk defenses are, at
// their core, community detectors around the trusted node.
package main

import (
	"fmt"
	"log"
	"sort"

	"mixtime"
)

func main() {
	honest := mixtime.BarabasiAlbert(800, 6, 1)
	sybilRegion := mixtime.BarabasiAlbert(200, 4, 2)
	attack := mixtime.NewSybilAttack(honest, sybilRegion, 4, 3)
	g := attack.Combined
	verifier := mixtime.NodeID(0)
	fmt.Printf("graph: %d honest + %d sybil nodes, %d attack edges\n\n",
		attack.HonestN, g.NumNodes()-attack.HonestN, attack.AttackEdges)

	report := func(name string, scores []float64) {
		var hMean, sMean float64
		for v, s := range scores {
			if attack.IsSybil(mixtime.NodeID(v)) {
				sMean += s
			} else {
				hMean += s
			}
		}
		hMean /= float64(attack.HonestN)
		sMean /= float64(g.NumNodes() - attack.HonestN)
		fmt.Printf("%-12s honest mean %8.5f   sybil mean %8.5f   AUC %.3f\n",
			name, hMean, sMean, rankAUC(scores, attack))
	}

	// SybilLimit admission (binary score).
	p, err := mixtime.NewSybilLimit(g, mixtime.SybilLimitConfig{W: 10, R0: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res := p.Verify(verifier, mixtime.AllHonest(g, verifier))
	sl := make([]float64, g.NumNodes())
	sl[verifier] = 1
	for i, s := range res.Suspects {
		if res.Accepted[i] {
			sl[s] = 1
		}
	}
	report("sybillimit", sl)

	// SybilInfer posterior marginals.
	inf, err := mixtime.SybilInfer(g, mixtime.SybilInferConfig{
		WalksPerNode: 20, W: 10, Samples: 120, Burn: 120, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	report("sybilinfer", inf.HonestProb)

	// Personalized PageRank from the verifier.
	report("ppr", mixtime.PersonalizedPageRank(g, verifier, 0.85))

	// Louvain community shared with the verifier.
	labels := mixtime.Louvain(g, 1)
	comm := make([]float64, g.NumNodes())
	for v := range comm {
		if labels[v] == labels[verifier] {
			comm[v] = 1
		}
	}
	report("community", comm)

	fmt.Println("\n→ the rankings agree: connectivity to the verifier is the common core.")
}

// rankAUC is the probability a random honest node outranks a random
// sybil (ties ½).
func rankAUC(scores []float64, attack *mixtime.SybilAttack) float64 {
	type item struct {
		s   float64
		syb bool
	}
	items := make([]item, len(scores))
	var nh, ns float64
	for v, s := range scores {
		syb := attack.IsSybil(mixtime.NodeID(v))
		items[v] = item{s, syb}
		if syb {
			ns++
		} else {
			nh++
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	var rankSum float64
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].s == items[i].s {
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if !items[k].syb {
				rankSum += mid
			}
		}
		i = j
	}
	return (rankSum - nh*(nh+1)/2) / (nh * ns)
}
