// Directed-graph study: the paper's preprocessing path made visible.
// The SNAP crawls behind wiki-vote/Slashdot/Epinion are directed; the
// paper (like every Sybil defense) symmetrizes them and measures the
// undirected walk. This example builds a directed crawl, measures the
// directed walk on its largest strongly connected component (whose
// stationary distribution must be computed numerically), then
// symmetrizes and measures the paper's way — showing how much the
// preprocessing itself moves the numbers.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"mixtime"
)

func main() {
	// A synthetic directed crawl: preferential attachment where new
	// nodes point at existing ones, plus a sprinkle of reciprocal and
	// random arcs (crawled follow-graphs look like this).
	rng := rand.New(rand.NewPCG(7, 7))
	const n = 3000
	b := mixtime.NewDiBuilder(4 * n)
	targets := []mixtime.NodeID{0, 1, 1, 0}
	b.AddArc(0, 1)
	b.AddArc(1, 0)
	for v := 2; v < n; v++ {
		for k := 0; k < 3; k++ {
			t := targets[rng.IntN(len(targets))]
			if t == mixtime.NodeID(v) {
				continue
			}
			b.AddArc(mixtime.NodeID(v), t)
			targets = append(targets, mixtime.NodeID(v), t)
			if rng.Float64() < 0.3 { // some links are reciprocated
				b.AddArc(t, mixtime.NodeID(v))
			}
		}
	}
	dg := b.Build()
	fmt.Printf("directed crawl: %d nodes, %d arcs\n", dg.NumNodes(), dg.NumArcs())

	// Directed walk on the largest SCC.
	scc, _ := mixtime.LargestSCC(dg)
	fmt.Printf("largest SCC:    %d nodes, %d arcs\n", scc.NumNodes(), scc.NumArcs())
	chain, err := mixtime.NewDirectedChain(scc, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	tr := chain.TraceFrom(0, 400)
	tDir := 0
	for t, d := range tr.TV {
		if d < 0.1 {
			tDir = t + 1
			break
		}
	}
	fmt.Printf("directed walk:  T(0.1) from node 0 ≈ %d steps\n\n", tDir)

	// The paper's path: symmetrize, take the LCC, measure both ways.
	ug := mixtime.Symmetrize(dg)
	m, err := mixtime.Measure(ug, mixtime.Options{Sources: 100, MaxWalk: 400, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symmetrized:    %d nodes, %d edges\n", m.Graph.NumNodes(), m.Graph.NumEdges())
	fmt.Printf("undirected µ:   %.5f\n", m.Mu())
	tU, ok := m.SampledMixingTime(0.1)
	fmt.Printf("undirected walk: T(0.1) = %d (reached=%v), avg %.1f, log n = %d\n",
		tU, ok, m.AverageMixingTime(0.1), m.FastMixingYardstick())
	fmt.Println("\n→ symmetrization changes the chain being measured; both views are available.")
}
