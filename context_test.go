package mixtime_test

import (
	"context"
	"errors"
	"testing"

	"mixtime"
)

// TestFacadeContextCancellation checks that the context-aware facade
// entry points abort promptly on an already-cancelled context and
// surface an error wrapping ctx.Err().
func TestFacadeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := mixtime.BarabasiAlbert(300, 3, 1)

	if _, err := mixtime.MeasureContext(ctx, g, mixtime.Options{Sources: 10, MaxWalk: 50}); !errors.Is(err, context.Canceled) {
		t.Errorf("MeasureContext err = %v, want wrap of context.Canceled", err)
	}
	if _, err := mixtime.SLEMContext(ctx, g, mixtime.SpectralOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SLEMContext err = %v, want wrap of context.Canceled", err)
	}
	if _, err := mixtime.SLEMPowerContext(ctx, g, mixtime.SpectralOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SLEMPowerContext err = %v, want wrap of context.Canceled", err)
	}

	// A live context behaves exactly like the plain entry points.
	m, err := mixtime.MeasureContext(context.Background(), g, mixtime.Options{Sources: 5, MaxWalk: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Traces) != 5 {
		t.Fatalf("%d traces", len(m.Traces))
	}
}

func TestFacadeDefaultOptions(t *testing.T) {
	o := mixtime.DefaultOptions()
	if o.Sources != 200 || o.MaxWalk != 500 || o.SpectralTol != 1e-7 || o.Seed != 1 {
		t.Fatalf("DefaultOptions() = %+v, want the documented canonical values", o)
	}
}
